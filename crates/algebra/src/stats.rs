//! Cardinality and size estimation.
//!
//! The paper's tool took "the estimates of the size of the processed
//! data and the processing time … returned by the PostgreSQL
//! optimizer". This module is our stand-in: per-column statistics on
//! base tables (row counts, distinct values, value ranges, average
//! widths) and a System-R style selectivity model that annotates every
//! plan node with estimated output rows and per-attribute distinct
//! counts. `mpq-planner` turns these into bytes, seconds, and USD.

use crate::catalog::Catalog;
use crate::expr::{CmpOp, Expr};
use crate::ids::{AttrId, RelId};
use crate::plan::{JoinKind, Operator, QueryPlan};
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// Default selectivities, PostgreSQL-flavored.
const DEFAULT_EQ_SEL: f64 = 0.005;
const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
const DEFAULT_BETWEEN_SEL: f64 = 0.11;
const DEFAULT_LIKE_SEL: f64 = 0.1;

/// An equi-depth histogram over a numeric (int/num/date) column.
///
/// Buckets hold near-equal row fractions; heavy values may widen a
/// bucket's share. Bucket `i` covers the closed interval
/// `[lo[i], hi[i]]`; intervals are disjoint and ascending.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Lower bound of each bucket (inclusive).
    lo: Vec<f64>,
    /// Upper bound of each bucket (inclusive).
    hi: Vec<f64>,
    /// Fraction of non-null rows in each bucket (sums to 1).
    frac: Vec<f64>,
    /// Distinct values in each bucket (≥ 1).
    ndv: Vec<f64>,
}

impl Histogram {
    /// Build from a **sorted** slice of sampled values with the target
    /// bucket count. Returns `None` on an empty sample.
    pub fn from_sorted(values: &[f64], buckets: usize) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        // Run-length encode so a heavy value never straddles buckets.
        let mut runs: Vec<(f64, usize)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((rv, n)) if *rv == v => *n += 1,
                _ => runs.push((v, 1)),
            }
        }
        let n = values.len() as f64;
        let buckets = buckets.clamp(1, runs.len());
        let depth = values.len().div_ceil(buckets);
        let mut h = Histogram::default();
        let (mut count, mut ndv, mut lo) = (0usize, 0.0f64, runs[0].0);
        let mut hi = lo;
        let mut flush = |lo: f64, hi: f64, count: usize, ndv: f64| {
            h.lo.push(lo);
            h.hi.push(hi);
            h.frac.push(count as f64 / n);
            h.ndv.push(ndv);
        };
        for (i, &(v, c)) in runs.iter().enumerate() {
            // A value heavy enough to fill a bucket by itself gets a
            // singleton bucket, so its equality fraction is exact
            // rather than averaged into its neighbours.
            if c >= depth {
                if count > 0 {
                    flush(lo, hi, count, ndv);
                    count = 0;
                    ndv = 0.0;
                }
                flush(v, v, c, 1.0);
                continue;
            }
            if count == 0 {
                lo = v;
            }
            count += c;
            ndv += 1.0;
            hi = v;
            if count >= depth || i + 1 == runs.len() {
                flush(lo, hi, count, ndv);
                count = 0;
                ndv = 0.0;
            }
        }
        Some(h)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.lo.len()
    }

    /// Scale every per-bucket distinct count by `factor` (used when
    /// extrapolating sampled statistics to a larger population).
    /// Singleton buckets (`lo == hi`) hold exactly one distinct value
    /// by construction — a heavy value's equality fraction is exact
    /// and must not be diluted by the sample scale-up.
    pub fn scale_ndv(&mut self, factor: f64) {
        for i in 0..self.ndv.len() {
            if self.lo[i] == self.hi[i] {
                continue;
            }
            self.ndv[i] = (self.ndv[i] * factor).max(1.0);
        }
    }

    /// Fraction of rows equal to `x` (uniform within the bucket).
    pub fn eq_fraction(&self, x: f64) -> f64 {
        for i in 0..self.buckets() {
            if x >= self.lo[i] && x <= self.hi[i] {
                return self.frac[i] / self.ndv[i].max(1.0);
            }
        }
        0.0
    }

    /// Fraction of rows strictly below `x` (linear interpolation inside
    /// the containing bucket).
    pub fn lt_fraction(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.buckets() {
            if x > self.hi[i] {
                acc += self.frac[i];
            } else if x >= self.lo[i] {
                let span = self.hi[i] - self.lo[i];
                let part = if span > 0.0 {
                    (x - self.lo[i]) / span
                } else {
                    0.0
                };
                return acc + self.frac[i] * part;
            } else {
                break;
            }
        }
        acc
    }

    /// Fraction of rows at or below `x`.
    pub fn le_fraction(&self, x: f64) -> f64 {
        (self.lt_fraction(x) + self.eq_fraction(x)).min(1.0)
    }

    /// Fraction of rows in the closed interval `[a, b]`.
    pub fn between_fraction(&self, a: f64, b: f64) -> f64 {
        if b < a {
            return 0.0;
        }
        (self.le_fraction(b) - self.lt_fraction(a)).clamp(0.0, 1.0)
    }
}

/// Statistics for one column of a base table.
#[derive(Clone, Debug)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: f64,
    /// Minimum value, for range selectivity on numeric/date columns.
    pub min: Option<f64>,
    /// Maximum value.
    pub max: Option<f64>,
    /// Average stored width in bytes.
    pub avg_width: f64,
    /// Fraction of NULLs.
    pub null_frac: f64,
    /// Equi-depth histogram on the value distribution, when collected
    /// (`mpq_planner::stats::collect_stats` samples one per numeric
    /// column; analytic statistics leave it empty).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Reasonable defaults for a column of the given type in a table of
    /// `rows` rows.
    pub fn default_for(ty: DataType, rows: f64) -> ColumnStats {
        let (ndv, width) = match ty {
            DataType::Int => (rows.max(1.0), 8.0),
            DataType::Num => ((rows / 2.0).max(1.0), 8.0),
            DataType::Str => ((rows / 10.0).max(1.0), 16.0),
            DataType::Date => (2500.0_f64.min(rows.max(1.0)), 4.0),
            DataType::Bool => (2.0, 1.0),
        };
        ColumnStats {
            ndv,
            min: None,
            max: None,
            avg_width: width,
            null_frac: 0.0,
            histogram: None,
        }
    }
}

/// Statistics for a base table.
#[derive(Clone, Debug)]
pub struct TableStats {
    /// Row count.
    pub rows: f64,
    /// Per-column statistics.
    pub columns: HashMap<AttrId, ColumnStats>,
}

/// Statistics for all base tables of a catalog.
#[derive(Clone, Debug, Default)]
pub struct StatsCatalog {
    tables: HashMap<RelId, TableStats>,
}

impl StatsCatalog {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table's statistics.
    pub fn set_table(&mut self, rel: RelId, stats: TableStats) {
        self.tables.insert(rel, stats);
    }

    /// Register default statistics for every relation of the catalog,
    /// assuming the given uniform row count.
    pub fn with_defaults(catalog: &Catalog, rows: f64) -> StatsCatalog {
        let mut sc = StatsCatalog::new();
        for rel in catalog.relations() {
            let columns = rel
                .columns
                .iter()
                .map(|c| (c.attr, ColumnStats::default_for(c.ty, rows)))
                .collect();
            sc.set_table(rel.rel, TableStats { rows, columns });
        }
        sc
    }

    /// Table statistics, if registered.
    pub fn table(&self, rel: RelId) -> Option<&TableStats> {
        self.tables.get(&rel)
    }

    /// Mutable table statistics, if registered.
    pub fn table_mut(&mut self, rel: RelId) -> Option<&mut TableStats> {
        self.tables.get_mut(&rel)
    }

    /// Extrapolate statistics collected on a sample population to one
    /// `factor` times larger (TPC-H scale factors: the value domains of
    /// categorical and range columns are scale-invariant, while key-like
    /// columns — distinct count proportional to the table — grow with
    /// it). A column is treated as key-like when its distinct count
    /// exceeds 10% of the sampled rows, the same convention PostgreSQL
    /// uses to decide whether `n_distinct` scales with the table.
    pub fn scale_population(&mut self, factor: f64) {
        for t in self.tables.values_mut() {
            let old_rows = t.rows.max(1.0);
            t.rows = (t.rows * factor).max(1.0);
            for c in t.columns.values_mut() {
                let key_like = c.ndv >= 0.1 * old_rows;
                if key_like {
                    c.ndv *= factor;
                    if let Some(h) = &mut c.histogram {
                        h.scale_ndv(factor);
                    }
                }
                c.ndv = c.ndv.min(t.rows).max(1.0);
            }
        }
    }

    /// Column statistics, if registered.
    pub fn column(&self, rel: RelId, attr: AttrId) -> Option<&ColumnStats> {
        self.tables.get(&rel).and_then(|t| t.columns.get(&attr))
    }

    /// Average width in bytes of an attribute (falls back to type-based
    /// defaults when no statistics are registered).
    pub fn attr_width(&self, catalog: &Catalog, attr: AttrId) -> f64 {
        let rel = catalog.attr_owner(attr);
        self.column(rel, attr)
            .map(|c| c.avg_width)
            .unwrap_or_else(|| match catalog.attr_type(attr) {
                DataType::Int | DataType::Num => 8.0,
                DataType::Str => 16.0,
                DataType::Date => 4.0,
                DataType::Bool => 1.0,
            })
    }
}

/// Estimated properties of one plan node's output.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated distinct counts per visible attribute.
    pub ndv: HashMap<AttrId, f64>,
}

impl Estimate {
    fn clamp(&mut self) {
        self.rows = self.rows.max(1.0);
        for v in self.ndv.values_mut() {
            *v = v.min(self.rows).max(1.0);
        }
    }
}

/// Annotate each reachable node of `plan` with row/NDV estimates.
/// The result is indexed by `NodeId::index()`; unreachable (detached)
/// nodes keep a default estimate.
pub fn estimate_plan(plan: &QueryPlan, catalog: &Catalog, stats: &StatsCatalog) -> Vec<Estimate> {
    let mut out: Vec<Estimate> = (0..plan.len())
        .map(|_| Estimate {
            rows: 1.0,
            ndv: HashMap::new(),
        })
        .collect();
    for id in plan.postorder() {
        let node = plan.node(id);
        let est = match &node.op {
            Operator::Base { rel, attrs } => {
                let t = stats.table(*rel);
                let rows = t.map(|t| t.rows).unwrap_or(1000.0);
                let ndv = attrs
                    .iter()
                    .map(|a| {
                        let n = t
                            .and_then(|t| t.columns.get(a))
                            .map(|c| c.ndv)
                            .unwrap_or(rows / 10.0);
                        (*a, n)
                    })
                    .collect();
                Estimate { rows, ndv }
            }
            Operator::Project { attrs } => {
                let child = &out[node.children[0].index()];
                let ndv = attrs
                    .iter()
                    .filter_map(|a| child.ndv.get(a).map(|n| (*a, *n)))
                    .collect();
                Estimate {
                    rows: child.rows,
                    ndv,
                }
            }
            Operator::Select { pred } => {
                let child = out[node.children[0].index()].clone();
                let sel = selectivity(pred, &child, catalog, stats);
                let mut est = scale(child, sel);
                refine_ndv(pred, &mut est, catalog, stats);
                est
            }
            Operator::Having { pred } => {
                let child = out[node.children[0].index()].clone();
                // HAVING predicates mostly reference aggregates; use the
                // range default per comparison.
                let sel = selectivity(pred, &child, catalog, stats);
                scale(child, sel)
            }
            Operator::Product => {
                let l = &out[node.children[0].index()];
                let r = &out[node.children[1].index()];
                let mut ndv = l.ndv.clone();
                ndv.extend(r.ndv.iter().map(|(k, v)| (*k, *v)));
                Estimate {
                    rows: l.rows * r.rows,
                    ndv,
                }
            }
            Operator::Join { kind, on, residual } => {
                let l = out[node.children[0].index()].clone();
                let r = out[node.children[1].index()].clone();
                let mut est = join_estimate(*kind, on, &l, &r);
                if let Some(resid) = residual {
                    let sel = selectivity(resid, &est, catalog, stats);
                    est = scale(est, sel);
                }
                est
            }
            Operator::GroupBy { keys, aggs } => {
                let child = &out[node.children[0].index()];
                let mut groups: f64 = 1.0;
                for k in keys {
                    groups *= child.ndv.get(k).copied().unwrap_or(10.0);
                }
                let rows = groups.min(child.rows).max(1.0);
                let mut ndv: HashMap<AttrId, f64> = keys
                    .iter()
                    .map(|k| (*k, child.ndv.get(k).copied().unwrap_or(rows).min(rows)))
                    .collect();
                for a in aggs {
                    ndv.insert(a.output, rows);
                }
                Estimate { rows, ndv }
            }
            Operator::Udf { inputs, output, .. } => {
                let child = &out[node.children[0].index()];
                let mut ndv = child.ndv.clone();
                for a in inputs {
                    if a != output {
                        ndv.remove(a);
                    }
                }
                ndv.insert(*output, child.rows);
                Estimate {
                    rows: child.rows,
                    ndv,
                }
            }
            Operator::Encrypt { .. } | Operator::Decrypt { .. } | Operator::Sort { .. } => {
                out[node.children[0].index()].clone()
            }
            Operator::Limit { n } => {
                let child = out[node.children[0].index()].clone();
                Estimate {
                    rows: child.rows.min(*n as f64),
                    ndv: child.ndv,
                }
            }
        };
        let mut est = est;
        est.clamp();
        out[id.index()] = est;
    }
    out
}

fn scale(mut est: Estimate, sel: f64) -> Estimate {
    let sel = sel.clamp(0.0, 1.0);
    est.rows *= sel;
    est
}

/// Tighten per-attribute distinct counts for columns a predicate
/// constrains directly. Walks top-level conjunctions only: an equality
/// pins the column to one value; a range keeps the covered fraction of
/// its distinct values; an IN keeps at most the list's length.
fn refine_ndv(pred: &Expr, est: &mut Estimate, catalog: &Catalog, stats: &StatsCatalog) {
    match pred {
        Expr::And(v) => {
            for e in v {
                refine_ndv(e, est, catalog, stats);
            }
        }
        Expr::Cmp(a, op, b) => {
            // Normalize to column-on-the-left: `lit < col` constrains
            // the column as `col > lit`.
            let (col, lit, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => (*c, v, *op),
                (Expr::Lit(v), Expr::Col(c)) => (*c, v, op.flipped()),
                _ => return,
            };
            if op.is_equality() {
                est.ndv.insert(col, 1.0);
            } else if op != CmpOp::Ne {
                let frac = cmp_col_lit_sel(col, op, lit, est, catalog, stats);
                if let Some(n) = est.ndv.get_mut(&col) {
                    *n = (*n * frac).max(1.0);
                }
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => {
            if let (Expr::Col(c), Expr::Lit(a), Expr::Lit(b)) =
                (expr.as_ref(), lo.as_ref(), hi.as_ref())
            {
                if let (Some(x), Some(y)) = (value_as_f64(a), value_as_f64(b)) {
                    let frac =
                        range_fraction(*c, x, y, catalog, stats).unwrap_or(DEFAULT_BETWEEN_SEL);
                    if let Some(n) = est.ndv.get_mut(c) {
                        *n = (*n * frac).max(1.0);
                    }
                }
            }
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            if let Expr::Col(c) = expr.as_ref() {
                if let Some(n) = est.ndv.get_mut(c) {
                    *n = n.min(list.len() as f64).max(1.0);
                }
            }
        }
        _ => {}
    }
}

/// Fraction of a column's rows inside `[lo, hi]`, from the histogram
/// when one is collected, else from min/max interpolation.
fn range_fraction(
    col: AttrId,
    lo: f64,
    hi: f64,
    catalog: &Catalog,
    stats: &StatsCatalog,
) -> Option<f64> {
    let rel = catalog.attr_owner(col);
    let cs = stats.column(rel, col)?;
    if let Some(h) = &cs.histogram {
        return Some(h.between_fraction(lo, hi));
    }
    let (mn, mx) = (cs.min?, cs.max?);
    if mx <= mn {
        return None;
    }
    let a = lo.max(mn);
    let b = hi.min(mx);
    Some(((b - a) / (mx - mn)).clamp(0.0, 1.0))
}

fn join_estimate(
    kind: JoinKind,
    on: &[(AttrId, CmpOp, AttrId)],
    l: &Estimate,
    r: &Estimate,
) -> Estimate {
    let mut sel = 1.0;
    for (a, op, b) in on {
        let nl = l.ndv.get(a).copied().unwrap_or(100.0);
        let nr = r.ndv.get(b).copied().unwrap_or(100.0);
        sel *= if op.is_equality() {
            1.0 / nl.max(nr).max(1.0)
        } else {
            DEFAULT_RANGE_SEL
        };
    }
    let inner_rows = (l.rows * r.rows * sel).max(1.0);
    let rows = match kind {
        JoinKind::Inner => inner_rows,
        JoinKind::LeftOuter => inner_rows.max(l.rows),
        JoinKind::Semi => {
            // Fraction of left rows with at least one match.
            let frac = (inner_rows / l.rows.max(1.0)).min(1.0);
            (l.rows * frac.max(0.1)).max(1.0)
        }
        JoinKind::Anti => {
            let frac = (inner_rows / l.rows.max(1.0)).min(1.0);
            (l.rows * (1.0 - frac).max(0.1)).max(1.0)
        }
    };
    let mut ndv = l.ndv.clone();
    if kind.keeps_right() {
        ndv.extend(r.ndv.iter().map(|(k, v)| (*k, *v)));
    }
    // An equi-join keeps only key values present on both sides: both
    // key columns end up with (at most) the smaller distinct count.
    if kind == JoinKind::Inner {
        for (a, op, b) in on {
            if op.is_equality() {
                let nl = l.ndv.get(a).copied().unwrap_or(100.0);
                let nr = r.ndv.get(b).copied().unwrap_or(100.0);
                let joint = nl.min(nr);
                ndv.insert(*a, joint);
                ndv.insert(*b, joint);
            }
        }
    }
    Estimate { rows, ndv }
}

/// Estimate the selectivity of a predicate against a node estimate.
pub fn selectivity(pred: &Expr, input: &Estimate, catalog: &Catalog, stats: &StatsCatalog) -> f64 {
    match pred {
        Expr::And(v) => v
            .iter()
            .map(|e| selectivity(e, input, catalog, stats))
            .product(),
        Expr::Or(v) => {
            let mut s = 0.0;
            for e in v {
                let se = selectivity(e, input, catalog, stats);
                s = s + se - s * se;
            }
            s
        }
        Expr::Not(e) => 1.0 - selectivity(e, input, catalog, stats),
        Expr::Cmp(a, op, b) => match (a.as_ref(), b.as_ref()) {
            // `lit op col` constrains the column under the flipped
            // operator (`100 > price` ⇔ `price < 100`).
            (Expr::Col(c), Expr::Lit(v)) => cmp_col_lit_sel(*c, *op, v, input, catalog, stats),
            (Expr::Lit(v), Expr::Col(c)) => {
                cmp_col_lit_sel(*c, op.flipped(), v, input, catalog, stats)
            }
            (Expr::Col(c1), Expr::Col(c2)) => {
                if op.is_equality() {
                    let n1 = input.ndv.get(c1).copied().unwrap_or(100.0);
                    let n2 = input.ndv.get(c2).copied().unwrap_or(100.0);
                    1.0 / n1.max(n2).max(1.0)
                } else {
                    DEFAULT_RANGE_SEL
                }
            }
            _ => {
                if op.is_equality() {
                    DEFAULT_EQ_SEL
                } else {
                    DEFAULT_RANGE_SEL
                }
            }
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            if let (Expr::Col(c), Expr::Lit(a), Expr::Lit(b)) =
                (expr.as_ref(), lo.as_ref(), hi.as_ref())
            {
                if let (Some(x), Some(y)) = (value_as_f64(a), value_as_f64(b)) {
                    if let Some(frac) = range_fraction(*c, x, y, catalog, stats) {
                        // NULLs satisfy neither BETWEEN nor NOT
                        // BETWEEN, matching the `>=`/`<=` spelling of
                        // the same predicate.
                        let nonnull = 1.0
                            - stats
                                .column(catalog.attr_owner(*c), *c)
                                .map(|cs| cs.null_frac)
                                .unwrap_or(0.0);
                        let inside = if *negated { 1.0 - frac } else { frac };
                        return (inside * nonnull).clamp(1e-4, 1.0);
                    }
                }
            }
            if *negated {
                1.0 - DEFAULT_BETWEEN_SEL
            } else {
                DEFAULT_BETWEEN_SEL
            }
        }
        Expr::Like { negated, .. } => {
            if *negated {
                1.0 - DEFAULT_LIKE_SEL
            } else {
                DEFAULT_LIKE_SEL
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let base = if let Expr::Col(c) = expr.as_ref() {
                let ndv = input.ndv.get(c).copied().unwrap_or(100.0);
                (list.len() as f64 / ndv.max(1.0)).min(1.0)
            } else {
                (list.len() as f64 * DEFAULT_EQ_SEL).min(1.0)
            };
            if *negated {
                1.0 - base
            } else {
                base
            }
        }
        Expr::IsNull { expr, negated } => {
            let frac = if let Expr::Col(c) = expr.as_ref() {
                let rel = catalog.attr_owner(*c);
                stats.column(rel, *c).map(|s| s.null_frac).unwrap_or(0.01)
            } else {
                0.01
            };
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        // Anything else used as a predicate: neutral default.
        _ => 0.5,
    }
}

fn cmp_col_lit_sel(
    col: AttrId,
    op: CmpOp,
    lit: &Value,
    input: &Estimate,
    catalog: &Catalog,
    stats: &StatsCatalog,
) -> f64 {
    let ndv = input.ndv.get(&col).copied().unwrap_or(100.0);
    let rel = catalog.attr_owner(col);
    let cs = stats.column(rel, col);
    let x = value_as_f64(lit);
    // Histogram path: the collected value distribution answers
    // equality and range predicates directly.
    if let (Some(cs), Some(x)) = (cs, x) {
        if let Some(h) = &cs.histogram {
            let nonnull = 1.0 - cs.null_frac;
            return match op {
                CmpOp::Eq => (h.eq_fraction(x) * nonnull).max(1e-6),
                CmpOp::Ne => ((1.0 - h.eq_fraction(x)) * nonnull).clamp(0.0, 1.0),
                CmpOp::Lt => (h.lt_fraction(x) * nonnull).clamp(1e-4, 1.0),
                CmpOp::Le => (h.le_fraction(x) * nonnull).clamp(1e-4, 1.0),
                CmpOp::Gt => ((1.0 - h.le_fraction(x)) * nonnull).clamp(1e-4, 1.0),
                CmpOp::Ge => ((1.0 - h.lt_fraction(x)) * nonnull).clamp(1e-4, 1.0),
            };
        }
    }
    if op.is_equality() {
        return (1.0 / ndv.max(1.0)).max(DEFAULT_EQ_SEL.min(1.0 / ndv.max(1.0)));
    }
    if op == CmpOp::Ne {
        return 1.0 - 1.0 / ndv.max(1.0);
    }
    // Range: interpolate against min/max when available.
    if let (Some(cs), Some(x)) = (cs, x) {
        if let (Some(lo), Some(hi)) = (cs.min, cs.max) {
            if hi > lo {
                let frac_below = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                return match op {
                    CmpOp::Lt | CmpOp::Le => frac_below,
                    CmpOp::Gt | CmpOp::Ge => 1.0 - frac_below,
                    _ => DEFAULT_RANGE_SEL,
                }
                .clamp(0.001, 1.0);
            }
        }
    }
    DEFAULT_RANGE_SEL
}

fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Num(f) => Some(*f),
        Value::Date(d) => Some(d.0 as f64),
        _ => None,
    }
}

/// Estimated plaintext row width (bytes) for a set of visible attributes.
pub fn row_width(catalog: &Catalog, stats: &StatsCatalog, attrs: &crate::AttrSet) -> f64 {
    attrs.iter().map(|a| stats.attr_width(catalog, a)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::plan_sql;
    use crate::catalog::Catalog;

    fn setup() -> (Catalog, StatsCatalog) {
        let cat = Catalog::paper_running_example();
        let mut stats = StatsCatalog::with_defaults(&cat, 10_000.0);
        // Refine: 500 distinct diseases, premium range 0..1000.
        let hosp = cat.relation("Hosp").unwrap().rel;
        let d = cat.attr("D").unwrap();
        if let Some(t) = stats.tables.get_mut(&hosp) {
            t.columns.get_mut(&d).unwrap().ndv = 500.0;
        }
        (cat, stats)
    }

    #[test]
    fn base_estimate_uses_table_rows() {
        let (cat, stats) = setup();
        let plan = plan_sql(&cat, "select S, D from Hosp").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let base = plan.postorder()[0];
        assert_eq!(est[base.index()].rows, 10_000.0);
    }

    #[test]
    fn equality_selection_uses_ndv() {
        let (cat, stats) = setup();
        let plan = plan_sql(&cat, "select S from Hosp where D='stroke'").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let root = plan.root();
        // 10000 rows / 500 distinct diseases = 20 rows.
        assert!(
            (est[root.index()].rows - 20.0).abs() < 1.0,
            "{}",
            est[root.index()].rows
        );
    }

    #[test]
    fn join_estimate_divides_by_max_ndv() {
        let (cat, stats) = setup();
        let plan = plan_sql(&cat, "select T, P from Hosp, Ins where S=C").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let root = plan.root();
        // |Hosp|*|Ins| / max(ndv S, ndv C) = 1e8 / 1000 = 1e5.
        let rows = est[root.index()].rows;
        assert!(rows > 1e4 && rows < 1e6, "{rows}");
    }

    #[test]
    fn group_by_caps_at_key_ndv() {
        let (cat, stats) = setup();
        let plan = plan_sql(&cat, "select D, count(*) from Hosp group by D").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let root = plan.root();
        assert!((est[root.index()].rows - 500.0).abs() < 1.0);
    }

    #[test]
    fn limit_caps_rows() {
        let (cat, stats) = setup();
        let plan = plan_sql(&cat, "select S from Hosp limit 7").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        assert_eq!(est[plan.root().index()].rows, 7.0);
    }

    #[test]
    fn or_selectivity_is_inclusion_exclusion() {
        let (cat, stats) = setup();
        let plan = plan_sql(&cat, "select S from Hosp where D='a' or D='b'").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let rows = est[plan.root().index()].rows;
        // ~2 * 20 rows.
        assert!(rows > 30.0 && rows < 50.0, "{rows}");
    }

    #[test]
    fn histogram_equi_depth_on_uniform_data() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::from_sorted(&vals, 10).unwrap();
        assert_eq!(h.buckets(), 10);
        // lt(500) ≈ 0.5, between(250, 749) ≈ 0.5.
        assert!((h.lt_fraction(500.0) - 0.5).abs() < 0.02);
        assert!((h.between_fraction(250.0, 749.0) - 0.5).abs() < 0.02);
        // Equality on a 1000-distinct-value column ≈ 1/1000.
        assert!((h.eq_fraction(123.0) - 0.001).abs() < 0.0005);
        // Out of range.
        assert_eq!(h.eq_fraction(-5.0), 0.0);
        assert_eq!(h.lt_fraction(-5.0), 0.0);
        assert!((h.lt_fraction(5000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_isolates_heavy_values() {
        // 90% of the mass on value 7, the rest uniform on 0..100.
        let mut vals: Vec<f64> = vec![7.0; 900];
        vals.extend((0..100).map(|i| i as f64));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let h = Histogram::from_sorted(&vals, 20).unwrap();
        // The heavy value's equality fraction must reflect its mass,
        // not the 1/ndv average (which would be ~1/101).
        assert!(h.eq_fraction(7.0) > 0.5, "{}", h.eq_fraction(7.0));
        // A light value stays far below the heavy one.
        assert!(h.eq_fraction(93.0) < 0.05);
    }

    #[test]
    fn histogram_overrides_ndv_guess() {
        let (cat, mut stats) = setup();
        // Attach a skewed histogram to the premium column: 90% zeros.
        let ins = cat.relation("Ins").unwrap().rel;
        let p = cat.attr("P").unwrap();
        let mut vals = vec![0.0f64; 9000];
        vals.extend((0..1000).map(|i| i as f64 + 1.0));
        let t = stats.tables.get_mut(&ins).unwrap();
        let c = t.columns.get_mut(&p).unwrap();
        c.histogram = Histogram::from_sorted(&vals, 16);
        let plan = plan_sql(&cat, "select C from Ins where P=0").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let rows = est[plan.root().index()].rows;
        assert!(rows > 7000.0, "heavy value should estimate high: {rows}");
        let plan = plan_sql(&cat, "select C from Ins where P>500").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let rows = est[plan.root().index()].rows;
        assert!(rows < 1500.0, "tail range should estimate low: {rows}");
    }

    #[test]
    fn not_between_inverts_the_histogram_fraction() {
        let (cat, mut stats) = setup();
        let ins = cat.relation("Ins").unwrap().rel;
        let p = cat.attr("P").unwrap();
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cs = stats
            .tables
            .get_mut(&ins)
            .unwrap()
            .columns
            .get_mut(&p)
            .unwrap();
        cs.histogram = Histogram::from_sorted(&vals, 16);
        let plan = plan_sql(&cat, "select C, P from Ins").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let input = est[plan.root().index()].clone();
        let between = |negated: bool| Expr::Between {
            expr: Box::new(Expr::Col(p)),
            lo: Box::new(Expr::Lit(Value::Num(0.0))),
            hi: Box::new(Expr::Lit(Value::Num(899.0))),
            negated,
        };
        let inside = selectivity(&between(false), &input, &cat, &stats);
        let outside = selectivity(&between(true), &input, &cat, &stats);
        assert!(inside > 0.8, "inside {inside}");
        assert!(outside < 0.2, "NOT BETWEEN must invert: {outside}");
        assert!((inside + outside - 1.0).abs() < 0.01);
    }

    #[test]
    fn scale_ndv_preserves_singleton_heavy_buckets() {
        let mut vals: Vec<f64> = vec![7.0; 900];
        vals.extend((0..100).map(|i| 1000.0 + i as f64));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut h = Histogram::from_sorted(&vals, 20).unwrap();
        let before = h.eq_fraction(7.0);
        h.scale_ndv(10.0);
        // The heavy value's bucket holds exactly one distinct value;
        // population scale-up must not dilute its equality fraction.
        assert_eq!(h.eq_fraction(7.0), before);
        // Multi-value buckets do scale.
        assert!(h.eq_fraction(1050.0) < 0.01);
    }

    #[test]
    fn literal_on_the_left_flips_the_operator() {
        let (cat, mut stats) = setup();
        let ins = cat.relation("Ins").unwrap().rel;
        let p = cat.attr("P").unwrap();
        // Give the premium column a real range so < and > differ.
        let cs = stats
            .tables
            .get_mut(&ins)
            .unwrap()
            .columns
            .get_mut(&p)
            .unwrap();
        cs.min = Some(0.0);
        cs.max = Some(1000.0);
        let plan = plan_sql(&cat, "select C, P from Ins").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let input = est[plan.root().index()].clone();
        // `100 > P` must estimate like `P < 100`, not like `P > 100`.
        let lit_left = Expr::cmp(Expr::Lit(Value::Num(100.0)), CmpOp::Gt, Expr::Col(p));
        let col_left = Expr::cmp(Expr::Col(p), CmpOp::Lt, Expr::Lit(Value::Num(100.0)));
        let sel = selectivity(&lit_left, &input, &cat, &stats);
        assert_eq!(sel, selectivity(&col_left, &input, &cat, &stats));
        assert!(sel < 0.2, "P < 100 over 0..1000 should be selective: {sel}");
    }

    #[test]
    fn equality_selection_pins_ndv() {
        let (cat, stats) = setup();
        let plan = plan_sql(&cat, "select S, D from Hosp where D='stroke'").unwrap();
        let est = estimate_plan(&plan, &cat, &stats);
        let d = cat.attr("D").unwrap();
        // After D='stroke' the column has one distinct value, so a
        // group-by over it would estimate a single group.
        assert_eq!(est[plan.root().index()].ndv.get(&d).copied(), Some(1.0));
    }

    #[test]
    fn row_width_sums_attr_widths() {
        let (cat, stats) = setup();
        let s = cat.attr("S").unwrap();
        let p = cat.attr("P").unwrap();
        let set: crate::AttrSet = [s, p].into_iter().collect();
        let w = row_width(&cat, &stats, &set);
        assert_eq!(w, 16.0 + 8.0); // Str default 16 + Num 8
    }
}
