//! Logical query plans.
//!
//! A [`QueryPlan`] is an arena-allocated operator tree whose leaves are
//! (projections of) base relations and whose internal nodes are the
//! operators of the paper's algebra: projection, selection, cartesian
//! product, join, group-by, user-defined function, and the
//! encryption/decryption operators injected by the authorization layer
//! (§5 of the paper). `Sort` and `Limit` are profile-neutral extras
//! needed to express TPC-H plans.
//!
//! The arena representation (rather than `Box`-nested nodes) lets the
//! authorization layer key per-node data (profiles, candidate sets,
//! assignments, cost tables) by [`NodeId`] and splice encryption /
//! decryption nodes onto edges in O(1).

use crate::attrset::AttrSet;
use crate::catalog::Catalog;
use crate::error::{AlgebraError, Result};
use crate::expr::{AggExpr, CmpOp, Expr};
use crate::ids::{AttrId, NodeId, RelId};
use std::fmt::Write as _;

/// Join variants. All variants share the paper's profile rule (the
/// join condition establishes equivalence classes); they differ in the
/// output schema and execution semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner equi-/theta-join.
    Inner,
    /// Left outer join (TPC-H Q13).
    LeftOuter,
    /// Left semi-join (EXISTS / IN subqueries, Q4).
    Semi,
    /// Left anti-join (NOT EXISTS / NOT IN, Q16, Q21, Q22).
    Anti,
}

impl JoinKind {
    /// `true` if the right input's columns appear in the output.
    pub fn keeps_right(self) -> bool {
        matches!(self, JoinKind::Inner | JoinKind::LeftOuter)
    }
}

/// A plan operator.
#[derive(Clone, Debug, PartialEq)]
pub enum Operator {
    /// Leaf: the projection of a base relation, held by its data
    /// authority. The paper represents leaves as "(the projection of) a
    /// source relation" — projection pushdown is baked into the leaf.
    Base {
        /// Base relation.
        rel: RelId,
        /// Projected attributes, in output order.
        attrs: Vec<AttrId>,
    },
    /// π — projection onto a subset of the input attributes.
    Project {
        /// Retained attributes, in output order.
        attrs: Vec<AttrId>,
    },
    /// σ — selection by an arbitrary predicate. The profile layer
    /// decomposes the predicate into constant comparisons and
    /// attribute-attribute comparisons (Fig. 2 rules).
    Select {
        /// Predicate.
        pred: Expr,
    },
    /// × — cartesian product.
    Product,
    /// ⋈ — join on a conjunction of attribute comparisons, optionally
    /// with an extra residual predicate over the combined schema.
    Join {
        /// Join variant.
        kind: JoinKind,
        /// Equi-/theta-conditions `l op r` with `l` from the left input
        /// and `r` from the right input.
        on: Vec<(AttrId, CmpOp, AttrId)>,
        /// Residual predicate evaluated on joined rows.
        residual: Option<Expr>,
    },
    /// γ — group-by with aggregates. With an empty key list this is a
    /// scalar aggregation (whole input = one group).
    GroupBy {
        /// Grouping attributes.
        keys: Vec<AttrId>,
        /// Aggregates (outputs named after input attributes, per the
        /// paper's renaming simplification).
        aggs: Vec<AggExpr>,
    },
    /// Predicate over a `GroupBy` result that may reference aggregate
    /// outputs positionally via [`Expr::AggRef`] (SQL `HAVING`).
    Having {
        /// Predicate; `AggRef(i)` refers to the i-th aggregate of the
        /// child group-by.
        pred: Expr,
    },
    /// µ — user-defined function elaborating attributes `inputs` and
    /// emitting an attribute named `output` (∈ `inputs`).
    Udf {
        /// Display name.
        name: String,
        /// Consumed attributes.
        inputs: Vec<AttrId>,
        /// Output attribute (must appear in `inputs`).
        output: AttrId,
        /// Optional executable body; opaque udfs are cost-model-only.
        body: Option<Expr>,
    },
    /// On-the-fly encryption of a set of attributes (§5).
    Encrypt {
        /// Attributes to encrypt.
        attrs: Vec<AttrId>,
    },
    /// On-the-fly decryption of a set of attributes (§5).
    Decrypt {
        /// Attributes to decrypt.
        attrs: Vec<AttrId>,
    },
    /// ORDER BY (profile-neutral).
    Sort {
        /// Sort keys with ascending flags; `Expr` so aggregate outputs
        /// can be referenced.
        keys: Vec<(Expr, bool)>,
    },
    /// LIMIT (profile-neutral).
    Limit {
        /// Row cap.
        n: u64,
    },
}

impl Operator {
    /// Number of children this operator requires.
    pub fn arity(&self) -> usize {
        match self {
            Operator::Base { .. } => 0,
            Operator::Product | Operator::Join { .. } => 2,
            _ => 1,
        }
    }

    /// Short operator name for display.
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Base { .. } => "Base",
            Operator::Project { .. } => "π",
            Operator::Select { .. } => "σ",
            Operator::Product => "×",
            Operator::Join { .. } => "⋈",
            Operator::GroupBy { .. } => "γ",
            Operator::Having { .. } => "σᵧ",
            Operator::Udf { .. } => "µ",
            Operator::Encrypt { .. } => "encrypt",
            Operator::Decrypt { .. } => "decrypt",
            Operator::Sort { .. } => "sort",
            Operator::Limit { .. } => "limit",
        }
    }
}

/// A node of the plan arena.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanNode {
    /// The operator at this node.
    pub op: Operator,
    /// Children (operands), left to right.
    pub children: Vec<NodeId>,
}

/// An operator tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryPlan {
    nodes: Vec<PlanNode>,
    root: Option<NodeId>,
}

impl QueryPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; the last node added is the root unless
    /// [`QueryPlan::set_root`] overrides it.
    pub fn add(&mut self, op: Operator, children: Vec<NodeId>) -> NodeId {
        debug_assert_eq!(op.arity(), children.len(), "operator arity mismatch");
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(PlanNode { op, children });
        self.root = Some(id);
        id
    }

    /// Leaf helper.
    pub fn add_base(&mut self, rel: RelId, attrs: Vec<AttrId>) -> NodeId {
        self.add(Operator::Base { rel, attrs }, vec![])
    }

    /// Explicitly set the root.
    pub fn set_root(&mut self, root: NodeId) {
        self.root = Some(root);
    }

    /// Root node id. Panics on an empty plan.
    pub fn root(&self) -> NodeId {
        self.root.expect("empty plan")
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.index()]
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, id: NodeId) -> &mut PlanNode {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes (including detached ones after splicing).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no node was added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of nodes reachable from the root in post-order (children
    /// before parents) — the paper's visit order for candidate
    /// computation and plan extension.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // Iterative post-order; (node, child_cursor) stack.
        let mut stack = vec![(self.root(), 0usize)];
        while let Some((id, cursor)) = stack.pop() {
            let kids = &self.nodes[id.index()].children;
            if cursor < kids.len() {
                stack.push((id, cursor + 1));
                stack.push((kids[cursor], 0));
            } else {
                out.push(id);
            }
        }
        out
    }

    /// The node feeding `id` after looking through the
    /// schema-preserving `Encrypt`/`Decrypt` operators that plan
    /// extension splices in. Consumers that must inspect the producing
    /// *relational* operator of an operand (e.g. `HAVING` resolving
    /// aggregate references against its `GROUP BY`) use this so
    /// extended plans behave exactly like their originals.
    pub fn through_crypto(&self, mut id: NodeId) -> NodeId {
        loop {
            match &self.nodes[id.index()].op {
                Operator::Encrypt { .. } | Operator::Decrypt { .. } => {
                    id = self.nodes[id.index()].children[0];
                }
                _ => return id,
            }
        }
    }

    /// Parent of each reachable node (`None` for the root and for
    /// detached nodes).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut p = vec![None; self.nodes.len()];
        for id in self.postorder() {
            for &c in &self.nodes[id.index()].children {
                p[c.index()] = Some(id);
            }
        }
        p
    }

    /// Ancestors of `id` from its parent up to the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let parents = self.parents();
        let mut out = Vec::new();
        let mut cur = parents[id.index()];
        while let Some(p) = cur {
            out.push(p);
            cur = parents[p.index()];
        }
        out
    }

    /// Splice a new single-child operator onto the edge above `child`:
    /// the new node adopts `child`, and whatever referenced `child`
    /// (its parent, or the root slot) now references the new node.
    pub fn splice_above(&mut self, child: NodeId, op: Operator) -> NodeId {
        debug_assert_eq!(op.arity(), 1);
        let parent = self.parents()[child.index()];
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(PlanNode {
            op,
            children: vec![child],
        });
        match parent {
            Some(p) => {
                for c in &mut self.nodes[p.index()].children {
                    if *c == child {
                        *c = id;
                        break; // only the first edge; trees have one edge per child
                    }
                }
            }
            None => self.root = Some(id),
        }
        id
    }

    /// The *visible* attribute schema of every node (what the paper
    /// calls `R^vp ∪ R^ve` — the attributes in the relation's schema).
    /// Indexed by `NodeId`; detached nodes keep their last schema.
    pub fn schemas(&self) -> Vec<AttrSet> {
        let mut out = vec![AttrSet::new(); self.nodes.len()];
        for id in self.postorder() {
            let node = &self.nodes[id.index()];
            let schema = match &node.op {
                Operator::Base { attrs, .. } | Operator::Project { attrs } => {
                    attrs.iter().copied().collect()
                }
                Operator::Select { .. }
                | Operator::Having { .. }
                | Operator::Encrypt { .. }
                | Operator::Decrypt { .. }
                | Operator::Sort { .. }
                | Operator::Limit { .. } => out[node.children[0].index()].clone(),
                Operator::Product => {
                    out[node.children[0].index()].union(&out[node.children[1].index()])
                }
                Operator::Join { kind, .. } => {
                    if kind.keeps_right() {
                        out[node.children[0].index()].union(&out[node.children[1].index()])
                    } else {
                        out[node.children[0].index()].clone()
                    }
                }
                Operator::GroupBy { keys, aggs } => {
                    let mut s: AttrSet = keys.iter().copied().collect();
                    for a in aggs {
                        s.insert(a.output);
                    }
                    s
                }
                Operator::Udf { inputs, output, .. } => {
                    let mut s = out[node.children[0].index()].clone();
                    for a in inputs {
                        if a != output {
                            s.remove(*a);
                        }
                    }
                    s.insert(*output);
                    s
                }
            };
            out[id.index()] = schema;
        }
        out
    }

    /// Structural validation: arities, tree-ness (every reachable node
    /// has exactly one parent), attribute scoping (operators only
    /// reference attributes visible in their operands), and aggregate
    /// output naming.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        if self.root.is_none() {
            return Err(AlgebraError::InvalidPlan("empty plan".into()));
        }
        let order = self.postorder();
        let mut seen = vec![0u32; self.nodes.len()];
        for &id in &order {
            for &c in &self.nodes[id.index()].children {
                seen[c.index()] += 1;
                if seen[c.index()] > 1 {
                    return Err(AlgebraError::InvalidPlan(format!(
                        "node {c} has multiple parents"
                    )));
                }
            }
        }
        let schemas = self.schemas();
        let in_schema = |set: &AttrSet, of: NodeId| set.is_subset(&schemas[of.index()]);
        for &id in &order {
            let node = &self.nodes[id.index()];
            if node.op.arity() != node.children.len() {
                return Err(AlgebraError::InvalidPlan(format!(
                    "node {id}: arity mismatch"
                )));
            }
            let child = |i: usize| node.children[i];
            match &node.op {
                Operator::Base { rel, attrs } => {
                    let rel_attrs = catalog.rel(*rel).attr_set();
                    if !attrs.iter().all(|a| rel_attrs.contains(*a)) {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: base projection outside relation schema"
                        )));
                    }
                }
                Operator::Project { attrs } => {
                    let set: AttrSet = attrs.iter().copied().collect();
                    if !in_schema(&set, child(0)) {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: projection of non-visible attributes"
                        )));
                    }
                }
                Operator::Select { pred } | Operator::Having { pred } => {
                    if !in_schema(&pred.attrs(), child(0)) {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: predicate references non-visible attributes"
                        )));
                    }
                    // Look through spliced crypto operators: an
                    // extended plan may interpose Encrypt/Decrypt
                    // between HAVING and its GROUP BY.
                    if matches!(node.op, Operator::Having { .. })
                        && !matches!(
                            self.nodes[self.through_crypto(child(0)).index()].op,
                            Operator::GroupBy { .. }
                        )
                    {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: HAVING over a non-GroupBy child"
                        )));
                    }
                }
                Operator::Product => {}
                Operator::Join { on, residual, .. } => {
                    for (l, _, r) in on {
                        if !schemas[child(0).index()].contains(*l)
                            || !schemas[child(1).index()].contains(*r)
                        {
                            return Err(AlgebraError::InvalidPlan(format!(
                                "node {id}: join keys not visible in respective operands"
                            )));
                        }
                    }
                    if let Some(res) = residual {
                        let combined = schemas[child(0).index()].union(&schemas[child(1).index()]);
                        if !res.attrs().is_subset(&combined) {
                            return Err(AlgebraError::InvalidPlan(format!(
                                "node {id}: residual references non-visible attributes"
                            )));
                        }
                    }
                }
                Operator::GroupBy { keys, aggs } => {
                    let key_set: AttrSet = keys.iter().copied().collect();
                    if !in_schema(&key_set, child(0)) {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: group keys not visible"
                        )));
                    }
                    for ag in aggs {
                        if !in_schema(&ag.input.attrs(), child(0)) {
                            return Err(AlgebraError::InvalidPlan(format!(
                                "node {id}: aggregate input not visible"
                            )));
                        }
                        let ins = ag.input.attrs();
                        if !ins.contains(ag.output)
                            && !key_set.contains(ag.output)
                            && !ins.is_empty()
                        {
                            return Err(AlgebraError::InvalidPlan(format!(
                                "node {id}: aggregate output {} must be named after an input or key attribute",
                                ag.output
                            )));
                        }
                        if ins.is_empty() && !schemas[child(0).index()].contains(ag.output) {
                            return Err(AlgebraError::InvalidPlan(format!(
                                "node {id}: count(*) output must reuse a visible attribute name"
                            )));
                        }
                    }
                }
                Operator::Udf { inputs, output, .. } => {
                    let set: AttrSet = inputs.iter().copied().collect();
                    if !in_schema(&set, child(0)) {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: udf inputs not visible"
                        )));
                    }
                    if !inputs.contains(output) {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: udf output must be named after an input"
                        )));
                    }
                }
                Operator::Encrypt { attrs } | Operator::Decrypt { attrs } => {
                    let set: AttrSet = attrs.iter().copied().collect();
                    if !in_schema(&set, child(0)) {
                        return Err(AlgebraError::InvalidPlan(format!(
                            "node {id}: encrypt/decrypt of non-visible attributes"
                        )));
                    }
                }
                Operator::Sort { keys } => {
                    for (e, _) in keys {
                        if !in_schema(&e.attrs(), child(0)) {
                            return Err(AlgebraError::InvalidPlan(format!(
                                "node {id}: sort key references non-visible attributes"
                            )));
                        }
                    }
                }
                Operator::Limit { .. } => {}
            }
        }
        Ok(())
    }

    /// Pretty-print the plan as an indented tree, paper-style.
    pub fn display(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.fmt_node(self.root(), catalog, 0, &mut out);
        out
    }

    fn fmt_node(&self, id: NodeId, catalog: &Catalog, depth: usize, out: &mut String) {
        let node = &self.nodes[id.index()];
        let indent = "  ".repeat(depth);
        let render = |attrs: &[AttrId]| {
            let set: AttrSet = attrs.iter().copied().collect();
            catalog.render_attrs(&set)
        };
        let label = match &node.op {
            Operator::Base { rel, attrs } => {
                format!("{}[{}]", catalog.rel(*rel).name, render(attrs))
            }
            Operator::Project { attrs } => format!("π {}", render(attrs)),
            Operator::Select { pred } => format!("σ {}", pred_display(pred, catalog)),
            Operator::Having { pred } => format!("σᵧ {}", pred_display(pred, catalog)),
            Operator::Product => "×".to_string(),
            Operator::Join { kind, on, .. } => {
                let conds: Vec<String> = on
                    .iter()
                    .map(|(l, op, r)| {
                        format!("{}{}{}", catalog.attr_name(*l), op, catalog.attr_name(*r))
                    })
                    .collect();
                format!("⋈{:?} {}", kind, conds.join(" AND "))
            }
            Operator::GroupBy { keys, aggs } => {
                let ags: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{}({})", a.func, expr_display(&a.input, catalog)))
                    .collect();
                format!("γ {} ; {}", render(keys), ags.join(", "))
            }
            Operator::Udf { name, inputs, .. } => {
                format!("µ {name}({})", render(inputs))
            }
            Operator::Encrypt { attrs } => format!("encrypt {}", render(attrs)),
            Operator::Decrypt { attrs } => format!("decrypt {}", render(attrs)),
            Operator::Sort { .. } => "sort".to_string(),
            Operator::Limit { n } => format!("limit {n}"),
        };
        let _ = writeln!(out, "{indent}{label}");
        for &c in &node.children {
            self.fmt_node(c, catalog, depth + 1, out);
        }
    }
}

fn expr_display(e: &Expr, catalog: &Catalog) -> String {
    // Substitute attribute ids with names for readability.
    let s = e.to_string();
    substitute_attr_names(&s, catalog)
}

fn pred_display(e: &Expr, catalog: &Catalog) -> String {
    expr_display(e, catalog)
}

fn substitute_attr_names(s: &str, catalog: &Catalog) -> String {
    // Replace occurrences of `aN` tokens with attribute names.
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'a'
            && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric())
            && i + 1 < bytes.len()
            && bytes[i + 1].is_ascii_digit()
        {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let n: usize = s[i + 1..j].parse().unwrap_or(usize::MAX);
            if n < catalog.num_attrs() {
                out.push_str(catalog.attr_name(AttrId::from_index(n)));
                i = j;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp};
    use crate::value::Value;

    /// Build the paper's running-example plan (Fig. 1a):
    /// σ_{avg(P)>100}(γ_{T,avg(P)}(σ_{D='stroke'}(π_{S,D,T}(Hosp)) ⋈_{S=C} Ins)).
    pub(crate) fn running_example(catalog: &Catalog) -> QueryPlan {
        let hosp = catalog.relation("Hosp").unwrap().rel;
        let ins = catalog.relation("Ins").unwrap().rel;
        let s = catalog.attr("S").unwrap();
        let d = catalog.attr("D").unwrap();
        let t = catalog.attr("T").unwrap();
        let c = catalog.attr("C").unwrap();
        let p = catalog.attr("P").unwrap();

        let mut plan = QueryPlan::new();
        let base_h = plan.add_base(hosp, vec![s, d, t]);
        let sel = plan.add(
            Operator::Select {
                pred: Expr::col_eq(d, Value::str("stroke")),
            },
            vec![base_h],
        );
        let base_i = plan.add_base(ins, vec![c, p]);
        let join = plan.add(
            Operator::Join {
                kind: JoinKind::Inner,
                on: vec![(s, CmpOp::Eq, c)],
                residual: None,
            },
            vec![sel, base_i],
        );
        let gby = plan.add(
            Operator::GroupBy {
                keys: vec![t],
                aggs: vec![AggExpr::over_col(AggFunc::Avg, p)],
            },
            vec![join],
        );
        plan.add(
            Operator::Having {
                pred: Expr::cmp(Expr::AggRef(0), CmpOp::Gt, Expr::Lit(Value::Num(100.0))),
            },
            vec![gby],
        );
        plan
    }

    #[test]
    fn running_example_validates() {
        let c = Catalog::paper_running_example();
        let plan = running_example(&c);
        plan.validate(&c).unwrap();
        assert_eq!(plan.postorder().len(), 6);
    }

    #[test]
    fn schemas_match_paper() {
        let cat = Catalog::paper_running_example();
        let plan = running_example(&cat);
        let schemas = plan.schemas();
        let order = plan.postorder();
        // Root schema: T and P (avg output named P).
        let root_schema = &schemas[plan.root().index()];
        assert_eq!(cat.render_attrs(root_schema), "TP");
        // Join schema: SDTCP.
        let join = order
            .iter()
            .find(|&&id| matches!(plan.node(id).op, Operator::Join { .. }))
            .copied()
            .unwrap();
        assert_eq!(schemas[join.index()].len(), 5);
    }

    #[test]
    fn postorder_children_first() {
        let cat = Catalog::paper_running_example();
        let plan = running_example(&cat);
        let order = plan.postorder();
        let pos: Vec<usize> = (0..plan.len())
            .map(|i| order.iter().position(|n| n.index() == i).unwrap())
            .collect();
        for id in order {
            for &c in &plan.node(id).children {
                assert!(pos[c.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn splice_above_mid_edge() {
        let cat = Catalog::paper_running_example();
        let mut plan = running_example(&cat);
        let d = cat.attr("D").unwrap();
        // Find σ D='stroke' and splice an encrypt above it.
        let sel = plan
            .postorder()
            .into_iter()
            .find(|&id| matches!(plan.node(id).op, Operator::Select { .. }))
            .unwrap();
        let parents_before = plan.parents();
        let old_parent = parents_before[sel.index()].unwrap();
        let enc = plan.splice_above(sel, Operator::Encrypt { attrs: vec![d] });
        let parents = plan.parents();
        assert_eq!(parents[sel.index()], Some(enc));
        assert_eq!(parents[enc.index()], Some(old_parent));
        plan.validate(&cat).unwrap();
    }

    #[test]
    fn splice_above_root() {
        let cat = Catalog::paper_running_example();
        let mut plan = running_example(&cat);
        let root = plan.root();
        let p = cat.attr("P").unwrap();
        let enc = plan.splice_above(root, Operator::Encrypt { attrs: vec![p] });
        assert_eq!(plan.root(), enc);
        plan.validate(&cat).unwrap();
    }

    #[test]
    fn validate_rejects_bad_projection() {
        let cat = Catalog::paper_running_example();
        let hosp = cat.relation("Hosp").unwrap().rel;
        let s = cat.attr("S").unwrap();
        let p = cat.attr("P").unwrap(); // belongs to Ins, not Hosp
        let mut plan = QueryPlan::new();
        let b = plan.add_base(hosp, vec![s]);
        plan.add(Operator::Project { attrs: vec![p] }, vec![b]);
        assert!(plan.validate(&cat).is_err());
    }

    #[test]
    fn validate_rejects_shared_node() {
        let cat = Catalog::paper_running_example();
        let hosp = cat.relation("Hosp").unwrap().rel;
        let s = cat.attr("S").unwrap();
        let mut plan = QueryPlan::new();
        let b = plan.add_base(hosp, vec![s]);
        plan.add(Operator::Product, vec![b, b]);
        assert!(matches!(
            plan.validate(&cat),
            Err(AlgebraError::InvalidPlan(msg)) if msg.contains("multiple parents")
        ));
    }

    #[test]
    fn validate_rejects_fresh_agg_output() {
        let cat = Catalog::paper_running_example();
        let hosp = cat.relation("Hosp").unwrap().rel;
        let s = cat.attr("S").unwrap();
        let p = cat.attr("P").unwrap();
        let mut plan = QueryPlan::new();
        let b = plan.add_base(hosp, vec![s]);
        plan.add(
            Operator::GroupBy {
                keys: vec![],
                aggs: vec![AggExpr {
                    func: AggFunc::Sum,
                    input: Expr::Col(s),
                    output: p, // not an input attribute
                }],
            },
            vec![b],
        );
        assert!(plan.validate(&cat).is_err());
    }

    #[test]
    fn display_is_readable() {
        let cat = Catalog::paper_running_example();
        let plan = running_example(&cat);
        let text = plan.display(&cat);
        assert!(text.contains("σ (D = 'stroke')"), "{text}");
        assert!(text.contains("⋈Inner S=C"), "{text}");
        assert!(text.contains("Hosp[SDT]"), "{text}");
    }
}
