//! Scalar and aggregate expressions.
//!
//! The paper models predicates abstractly as `a op x` (attribute vs
//! constant) and `a_i op a_j` (attribute vs attribute). Real queries —
//! and the TPC-H workload of the paper's evaluation — need richer
//! predicates (conjunctions, LIKE, BETWEEN, CASE, arithmetic inside
//! aggregates). [`Expr`] carries the full expression for execution,
//! while [`Expr::const_compared_attrs`] and [`Expr::attr_pairs`]
//! project it back onto the paper's abstract view for profile
//! propagation (Fig. 2).

use crate::ids::AttrId;
use crate::value::{DataType, Value};
use crate::AttrSet;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// `true` for `=`; equality predicates can run on deterministically
    /// encrypted data, the others need order (OPE) or plaintext.
    pub fn is_equality(self) -> bool {
        matches!(self, CmpOp::Eq)
    }

    /// Evaluate against a three-way comparison result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// Date fields for `EXTRACT`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DateField {
    /// `extract(year from …)`
    Year,
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Reference to an attribute of the input relation.
    Col(AttrId),
    /// Positional reference to the output of the `i`-th aggregate of a
    /// child group-by node (used by HAVING / ORDER BY / projections
    /// above a `GroupBy`).
    AggRef(usize),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction (empty ⇒ TRUE).
    And(Vec<Expr>),
    /// Disjunction (empty ⇒ FALSE).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like {
        /// String operand.
        expr: Box<Expr>,
        /// Pattern.
        pattern: String,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IN (v, …)` over literals.
    InList {
        /// Tested operand.
        expr: Box<Expr>,
        /// Literal list.
        list: Vec<Value>,
        /// `NOT IN`.
        negated: bool,
    },
    /// Searched CASE.
    Case {
        /// `WHEN cond THEN value` branches.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` value (NULL if absent).
        else_: Option<Box<Expr>>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested operand.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `EXTRACT(field FROM expr)`.
    Extract {
        /// Field to extract.
        field: DateField,
        /// Date operand.
        expr: Box<Expr>,
    },
    /// `SUBSTRING(expr FROM start FOR len)` (1-based).
    Substring {
        /// String operand.
        expr: Box<Expr>,
        /// 1-based start.
        start: usize,
        /// Length.
        len: usize,
    },
}

impl Expr {
    /// `a op b` convenience constructor.
    pub fn cmp(a: Expr, op: CmpOp, b: Expr) -> Expr {
        Expr::Cmp(Box::new(a), op, Box::new(b))
    }

    /// Column-vs-literal equality.
    pub fn col_eq(a: AttrId, v: Value) -> Expr {
        Expr::cmp(Expr::Col(a), CmpOp::Eq, Expr::Lit(v))
    }

    /// Conjunction of two expressions, flattening nested ANDs.
    pub fn and(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::And(mut a), Expr::And(b)) => {
                a.extend(b);
                Expr::And(a)
            }
            (Expr::And(mut a), e) => {
                a.push(e);
                Expr::And(a)
            }
            (e, Expr::And(mut b)) => {
                b.insert(0, e);
                Expr::And(b)
            }
            (a, b) => Expr::And(vec![a, b]),
        }
    }

    /// Arithmetic convenience constructor.
    pub fn arith(a: Expr, op: ArithOp, b: Expr) -> Expr {
        Expr::Arith(Box::new(a), op, Box::new(b))
    }

    /// All attributes referenced anywhere in the expression.
    pub fn attrs(&self) -> AttrSet {
        let mut s = AttrSet::new();
        self.collect_attrs(&mut s);
        s
    }

    fn collect_attrs(&self, out: &mut AttrSet) {
        match self {
            Expr::Col(a) => {
                out.insert(*a);
            }
            Expr::AggRef(_) | Expr::Lit(_) => {}
            Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.collect_attrs(out);
                }
            }
            Expr::Not(e)
            | Expr::Like { expr: e, .. }
            | Expr::InList { expr: e, .. }
            | Expr::IsNull { expr: e, .. }
            | Expr::Extract { expr: e, .. }
            | Expr::Substring { expr: e, .. } => e.collect_attrs(out),
            Expr::Between { expr, lo, hi, .. } => {
                expr.collect_attrs(out);
                lo.collect_attrs(out);
                hi.collect_attrs(out);
            }
            Expr::Case { branches, else_ } => {
                for (c, v) in branches {
                    c.collect_attrs(out);
                    v.collect_attrs(out);
                }
                if let Some(e) = else_ {
                    e.collect_attrs(out);
                }
            }
        }
    }

    /// Attributes compared against constants or otherwise *used* by the
    /// predicate without being paired to another attribute — the `a` of
    /// the paper's `σ_{a op x}` rule. These become implicit attributes
    /// of the selection result.
    pub fn const_compared_attrs(&self) -> AttrSet {
        let mut consts = AttrSet::new();
        let mut pairs = Vec::new();
        self.classify(&mut consts, &mut pairs);
        consts
    }

    /// Attribute-vs-attribute comparisons — the `{a_i, a_j}` pairs of
    /// the paper's `σ_{a_i op a_j}` rule. These feed the equivalence
    /// component of the result profile.
    pub fn attr_pairs(&self) -> Vec<(AttrId, AttrId)> {
        let mut consts = AttrSet::new();
        let mut pairs = Vec::new();
        self.classify(&mut consts, &mut pairs);
        pairs
    }

    fn classify(&self, consts: &mut AttrSet, pairs: &mut Vec<(AttrId, AttrId)>) {
        match self {
            Expr::Cmp(a, _, b) => {
                let sa = a.attrs();
                let sb = b.attrs();
                match (sa.len(), sb.len()) {
                    // attribute-to-attribute comparison: only the
                    // simple `Col op Col` form establishes equivalence;
                    // anything more complex conservatively marks all
                    // attributes as condition-involved (implicit).
                    (1, 1) => {
                        if let (Expr::Col(x), Expr::Col(y)) = (a.as_ref(), b.as_ref()) {
                            pairs.push((*x, *y));
                        } else {
                            consts.union_with(&sa);
                            consts.union_with(&sb);
                        }
                    }
                    _ => {
                        consts.union_with(&sa);
                        consts.union_with(&sb);
                    }
                }
            }
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.classify(consts, pairs);
                }
            }
            Expr::Not(e) => e.classify(consts, pairs),
            Expr::Case { branches, else_ } => {
                for (c, v) in branches {
                    c.classify(consts, pairs);
                    consts.union_with(&v.attrs());
                }
                if let Some(e) = else_ {
                    consts.union_with(&e.attrs());
                }
            }
            // Everything else references attributes against constants
            // (LIKE/BETWEEN/IN/IS NULL) or computes over them.
            other => consts.union_with(&other.attrs()),
        }
    }

    /// Attributes whose *plaintext* the default capability policy needs
    /// to evaluate this expression, assuming deterministic encryption
    /// supports equality, OPE supports ordering, and nothing supports
    /// string matching, extraction, or scalar arithmetic.
    ///
    /// This implements the paper's `A_p` ("attributes that must be in
    /// plaintext for the execution of `n`") for the common case; the
    /// optimizer can override it per node.
    pub fn plaintext_required(&self, allow_ope: bool) -> AttrSet {
        let mut out = AttrSet::new();
        self.plaintext_req_inner(allow_ope, &mut out);
        out
    }

    fn plaintext_req_inner(&self, allow_ope: bool, out: &mut AttrSet) {
        match self {
            Expr::Col(_) | Expr::AggRef(_) | Expr::Lit(_) => {}
            Expr::Cmp(a, op, b) => {
                let simple = matches!(
                    (a.as_ref(), b.as_ref()),
                    (Expr::Col(_), Expr::Col(_))
                        | (Expr::Col(_), Expr::Lit(_))
                        | (Expr::Lit(_), Expr::Col(_))
                        | (Expr::AggRef(_), Expr::Lit(_))
                        | (Expr::Lit(_), Expr::AggRef(_))
                );
                if simple {
                    let supported = op.is_equality() || allow_ope;
                    if !supported {
                        out.union_with(&a.attrs());
                        out.union_with(&b.attrs());
                    }
                } else {
                    // Arithmetic inside a comparison needs plaintext.
                    out.union_with(&a.attrs());
                    out.union_with(&b.attrs());
                }
            }
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.plaintext_req_inner(allow_ope, out);
                }
            }
            Expr::Not(e) => e.plaintext_req_inner(allow_ope, out),
            Expr::Between { expr, lo, hi, .. } => {
                if !allow_ope {
                    out.union_with(&expr.attrs());
                }
                out.union_with(&lo.attrs());
                out.union_with(&hi.attrs());
            }
            Expr::InList { expr, .. } => {
                // IN over literals is a disjunction of equalities:
                // deterministic encryption suffices, unless the operand
                // is computed.
                if !matches!(expr.as_ref(), Expr::Col(_)) {
                    out.union_with(&expr.attrs());
                }
            }
            Expr::IsNull { .. } => {}
            // String matching, date extraction, substring, arithmetic
            // and CASE all require plaintext operands.
            other => out.union_with(&other.attrs()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(a) => write!(f, "{a}"),
            Expr::AggRef(i) => write!(f, "agg#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(a, op, b) => write!(f, "({a} {op} {b})"),
            Expr::And(v) => {
                let parts: Vec<String> = v.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            Expr::Or(v) => {
                let parts: Vec<String> = v.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" OR "))
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Arith(a, op, b) => write!(f, "({a} {op} {b})"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE '{pattern}'",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {lo} AND {hi}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Case { branches, else_ } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Extract { field, expr } => {
                let fname = match field {
                    DateField::Year => "year",
                };
                write!(f, "extract({fname} from {expr})")
            }
            Expr::Substring { expr, start, len } => {
                write!(f, "substring({expr} from {start} for {len})")
            }
        }
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` or `count(expr)`.
    Count,
    /// `count(distinct expr)`.
    CountDistinct,
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
}

impl AggFunc {
    /// Whether this aggregate can run over ciphertexts of some scheme:
    /// SUM/AVG via Paillier, MIN/MAX via OPE, COUNT always.
    pub fn encrypted_capable(self) -> bool {
        true // every aggregate has an encrypted realization given the right scheme
    }

    /// Plaintext needed for the aggregate *input* under the default
    /// capability policy.
    pub fn input_plaintext_required(
        self,
        input_is_simple_col: bool,
        allow_homomorphic: bool,
        allow_ope: bool,
    ) -> bool {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => false,
            AggFunc::Sum | AggFunc::Avg => !(input_is_simple_col && allow_homomorphic),
            AggFunc::Min | AggFunc::Max => !(input_is_simple_col && allow_ope),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        })
    }
}

/// One aggregate of a group-by node.
///
/// Following the paper's simplification ("we consider the attribute
/// resulting from `f(a)` with the same name as `a`"), the output is
/// *named after* one of the input attributes: [`AggExpr::output`] must
/// reference an attribute occurring in [`AggExpr::input`] (or the first
/// group key for `count(*)`). This keeps the authorization domain equal
/// to the base attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (`Lit(1)` for `count(*)`).
    pub input: Expr,
    /// Output attribute name (one of the input attributes).
    pub output: AttrId,
}

impl AggExpr {
    /// Build an aggregate over a single column, output named after it.
    pub fn over_col(func: AggFunc, col: AttrId) -> AggExpr {
        AggExpr {
            func,
            input: Expr::Col(col),
            output: col,
        }
    }

    /// `count(*)` carried under the given (key) attribute's name.
    pub fn count_star(output: AttrId) -> AggExpr {
        AggExpr {
            func: AggFunc::Count,
            input: Expr::Lit(Value::Int(1)),
            output,
        }
    }

    /// Output value type given the input type.
    pub fn output_type(&self, input_ty: DataType) -> DataType {
        match self.func {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Sum | AggFunc::Avg => DataType::Num,
            AggFunc::Min | AggFunc::Max => input_ty,
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})→{}", self.func, self.input, self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn attrs_collects_everything() {
        let e = Expr::cmp(
            Expr::arith(Expr::Col(a(0)), ArithOp::Mul, Expr::Col(a(1))),
            CmpOp::Gt,
            Expr::Lit(Value::Int(10)),
        );
        assert_eq!(e.attrs(), AttrSet::from_iter([a(0), a(1)]));
    }

    #[test]
    fn classify_const_vs_pairs() {
        // D = 'stroke' AND S = C  (the paper's σ and ⋈ conditions)
        let e = Expr::col_eq(a(2), Value::str("stroke")).and(Expr::cmp(
            Expr::Col(a(0)),
            CmpOp::Eq,
            Expr::Col(a(4)),
        ));
        assert_eq!(e.const_compared_attrs(), AttrSet::singleton(a(2)));
        assert_eq!(e.attr_pairs(), vec![(a(0), a(4))]);
    }

    #[test]
    fn complex_comparison_is_conservative() {
        // a0 + a1 > a2: no equivalence, all implicit.
        let e = Expr::cmp(
            Expr::arith(Expr::Col(a(0)), ArithOp::Add, Expr::Col(a(1))),
            CmpOp::Gt,
            Expr::Col(a(2)),
        );
        assert!(e.attr_pairs().is_empty());
        assert_eq!(
            e.const_compared_attrs(),
            AttrSet::from_iter([a(0), a(1), a(2)])
        );
    }

    #[test]
    fn plaintext_required_policy() {
        // Equality on a column: never needs plaintext.
        let eq = Expr::col_eq(a(0), Value::Int(1));
        assert!(eq.plaintext_required(true).is_empty());
        assert!(eq.plaintext_required(false).is_empty());
        // Range on a column: OPE-capable, otherwise plaintext.
        let rng = Expr::cmp(Expr::Col(a(0)), CmpOp::Gt, Expr::Lit(Value::Int(1)));
        assert!(rng.plaintext_required(true).is_empty());
        assert_eq!(rng.plaintext_required(false), AttrSet::singleton(a(0)));
        // LIKE always needs plaintext.
        let like = Expr::Like {
            expr: Box::new(Expr::Col(a(3))),
            pattern: "%BRASS".into(),
            negated: false,
        };
        assert_eq!(like.plaintext_required(true), AttrSet::singleton(a(3)));
        // BETWEEN is a range.
        let btw = Expr::Between {
            expr: Box::new(Expr::Col(a(1))),
            lo: Box::new(Expr::Lit(Value::Int(0))),
            hi: Box::new(Expr::Lit(Value::Int(9))),
            negated: false,
        };
        assert!(btw.plaintext_required(true).is_empty());
        assert_eq!(btw.plaintext_required(false), AttrSet::singleton(a(1)));
        // IN over a column is equality-like.
        let inl = Expr::InList {
            expr: Box::new(Expr::Col(a(2))),
            list: vec![Value::Int(1), Value::Int(2)],
            negated: false,
        };
        assert!(inl.plaintext_required(false).is_empty());
    }

    #[test]
    fn cmp_eval_and_flip() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }

    #[test]
    fn and_flattens() {
        let e = Expr::col_eq(a(0), Value::Int(1))
            .and(Expr::col_eq(a(1), Value::Int(2)))
            .and(Expr::col_eq(a(2), Value::Int(3)));
        match e {
            Expr::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flat AND, got {other:?}"),
        }
    }

    #[test]
    fn agg_expr_display_and_types() {
        let ag = AggExpr::over_col(AggFunc::Avg, a(5));
        assert_eq!(ag.output_type(DataType::Num), DataType::Num);
        assert_eq!(
            AggExpr::count_star(a(0)).output_type(DataType::Str),
            DataType::Int
        );
        assert_eq!(format!("{ag}"), "avg(a5)→a5");
    }
}
