//! SQL front-end for the paper's query class.
//!
//! The paper considers queries of the general form
//! `select … from … where … group by … having …` with joins among
//! relations of different authorities. This module provides a lexer and
//! recursive-descent parser for exactly that dialect (plus `ORDER BY`,
//! `LIMIT`, date literals and intervals needed by TPC-H). The output is
//! a name-based AST; [`crate::builder`] resolves names against a
//! [`crate::Catalog`] and produces a [`crate::QueryPlan`] with
//! projections pushed down.

use crate::error::{AlgebraError, Result};
use crate::expr::{AggFunc, ArithOp, CmpOp};
use crate::value::{Date, Value};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// Name-based expression AST.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// Column reference (optionally `table.column`; the table part is
    /// dropped since attribute names are globally unique).
    Col(String),
    /// Literal value.
    Lit(Value),
    /// `INTERVAL 'n' unit`; only meaningful inside date arithmetic and
    /// folded away at build time.
    Interval(i64, IntervalUnit),
    /// Aggregate call.
    Agg(AggFunc, Box<AstExpr>, bool),
    /// `count(*)`.
    CountStar,
    /// Comparison.
    Cmp(Box<AstExpr>, CmpOp, Box<AstExpr>),
    /// Conjunction.
    And(Vec<AstExpr>),
    /// Disjunction.
    Or(Vec<AstExpr>),
    /// Negation.
    Not(Box<AstExpr>),
    /// Arithmetic.
    Arith(Box<AstExpr>, ArithOp, Box<AstExpr>),
    /// LIKE.
    Like(Box<AstExpr>, String, bool),
    /// BETWEEN.
    Between(Box<AstExpr>, Box<AstExpr>, Box<AstExpr>, bool),
    /// IN over literals.
    InList(Box<AstExpr>, Vec<Value>, bool),
    /// Searched CASE.
    Case(Vec<(AstExpr, AstExpr)>, Option<Box<AstExpr>>),
    /// `IS [NOT] NULL`.
    IsNull(Box<AstExpr>, bool),
    /// extract(year from e).
    ExtractYear(Box<AstExpr>),
    /// substring(e from i for n).
    Substring(Box<AstExpr>, usize, usize),
}

/// Units for `INTERVAL` literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalUnit {
    /// Days.
    Day,
    /// Months.
    Month,
    /// Years.
    Year,
}

/// One item of the select list.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    /// Expression.
    pub expr: AstExpr,
    /// Optional alias (informational).
    pub alias: Option<String>,
}

/// A table in the FROM clause.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Relation name.
    pub name: String,
    /// Explicit `JOIN … ON` condition binding this table to the
    /// preceding ones (None for the first table / comma syntax).
    pub join_on: Option<AstExpr>,
}

/// A parsed `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM tables, in syntactic order.
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_: Option<AstExpr>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// HAVING predicate.
    pub having: Option<AstExpr>,
    /// ORDER BY items (expression, ascending).
    pub order_by: Vec<(AstExpr, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Num(f64),
    Str(String),
    Sym(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    toks: Vec<(Tok, usize)>,
}

impl<'a> Lexer<'a> {
    fn tokenize(src: &'a str) -> Result<Vec<(Tok, usize)>> {
        let mut lx = Lexer {
            src,
            pos: 0,
            toks: Vec::new(),
        };
        lx.run()?;
        Ok(lx.toks)
    }

    fn err(&self, msg: &str) -> AlgebraError {
        AlgebraError::Parse {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn run(&mut self) -> Result<()> {
        let b = self.src.as_bytes();
        while self.pos < b.len() {
            let start = self.pos;
            let c = b[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'-' if b.get(self.pos + 1) == Some(&b'-') => {
                    // line comment
                    while self.pos < b.len() && b[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        if self.pos >= b.len() {
                            return Err(self.err("unterminated string literal"));
                        }
                        if b[self.pos] == b'\'' {
                            if b.get(self.pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                self.pos += 2;
                            } else {
                                self.pos += 1;
                                break;
                            }
                        } else {
                            s.push(b[self.pos] as char);
                            self.pos += 1;
                        }
                    }
                    self.toks.push((Tok::Str(s), start));
                }
                b'0'..=b'9' => {
                    let mut j = self.pos;
                    let mut is_float = false;
                    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
                        if b[j] == b'.' {
                            is_float = true;
                        }
                        j += 1;
                    }
                    let text = &self.src[self.pos..j];
                    let tok = if is_float {
                        Tok::Num(text.parse().map_err(|_| self.err("bad number"))?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| self.err("bad integer"))?)
                    };
                    self.toks.push((tok, start));
                    self.pos = j;
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let mut j = self.pos;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    self.toks.push((
                        Tok::Ident(self.src[self.pos..j].to_ascii_lowercase()),
                        start,
                    ));
                    self.pos = j;
                }
                _ => {
                    let two = self.src.get(self.pos..self.pos + 2);
                    let sym = match two {
                        Some("<=") => Some("<="),
                        Some(">=") => Some(">="),
                        Some("<>") => Some("<>"),
                        Some("!=") => Some("<>"),
                        _ => None,
                    };
                    if let Some(s) = sym {
                        self.toks.push((Tok::Sym(s), start));
                        self.pos += 2;
                    } else {
                        let s = match c {
                            b'(' => "(",
                            b')' => ")",
                            b',' => ",",
                            b'.' => ".",
                            b'=' => "=",
                            b'<' => "<",
                            b'>' => ">",
                            b'+' => "+",
                            b'-' => "-",
                            b'*' => "*",
                            b'/' => "/",
                            b';' => ";",
                            _ => return Err(self.err("unexpected character")),
                        };
                        self.toks.push((Tok::Sym(s), start));
                        self.pos += 1;
                    }
                }
            }
        }
        self.toks.push((Tok::Eof, self.pos));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a single `SELECT` statement.
pub fn parse_select(src: &str) -> Result<SelectStmt> {
    let toks = Lexer::tokenize(src)?;
    let mut p = Parser { toks, i: 0 };
    let stmt = p.select()?;
    p.eat_sym(";").ok();
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].0
    }

    fn pos(&self) -> usize {
        self.toks[self.i].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].0.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> AlgebraError {
        AlgebraError::Parse {
            pos: self.pos(),
            msg: msg.into(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> Result<()> {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{sym}'")))
        }
    }

    fn try_sym(&mut self, sym: &str) -> bool {
        self.eat_sym(sym).is_ok()
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err("trailing tokens after statement"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            _ => Err(self.err("expected identifier")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.try_sym(",") {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![TableRef {
            name: self.ident()?,
            join_on: None,
        }];
        loop {
            if self.try_sym(",") {
                from.push(TableRef {
                    name: self.ident()?,
                    join_on: None,
                });
            } else if self.eat_kw("join") || (self.eat_kw("inner") && self.eat_kw("join")) {
                let name = self.ident()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                from.push(TableRef {
                    name,
                    join_on: Some(on),
                });
            } else {
                break;
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.ident()?);
            while self.try_sym(",") {
                group_by.push(self.ident()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((e, asc));
                if !self.try_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let first = self.and_expr()?;
        let mut parts = vec![first];
        while self.eat_kw("or") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            AstExpr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let first = self.not_expr()?;
        let mut parts = vec![first];
        while self.eat_kw("and") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            AstExpr::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<AstExpr> {
        let lhs = self.add_expr()?;
        // Optional comparison / BETWEEN / LIKE / IN / IS NULL suffix.
        let negated = if matches!(self.peek(), Tok::Ident(s) if s == "not") {
            // lookahead: NOT LIKE / NOT BETWEEN / NOT IN
            let next = self.toks.get(self.i + 1).map(|t| t.0.clone());
            match next {
                Some(Tok::Ident(ref k)) if k == "like" || k == "between" || k == "in" => {
                    self.bump();
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if self.eat_kw("like") {
            let pat = match self.bump() {
                Tok::Str(s) => s,
                _ => return Err(self.err("expected string pattern after LIKE")),
            };
            return Ok(AstExpr::Like(Box::new(lhs), pat, negated));
        }
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(AstExpr::Between(
                Box::new(lhs),
                Box::new(lo),
                Box::new(hi),
                negated,
            ));
        }
        if self.eat_kw("in") {
            self.eat_sym("(")?;
            let mut list = Vec::new();
            loop {
                match self.add_expr()? {
                    AstExpr::Lit(v) => list.push(v),
                    _ => return Err(self.err("IN list must contain literals")),
                }
                if !self.try_sym(",") {
                    break;
                }
            }
            self.eat_sym(")")?;
            return Ok(AstExpr::InList(Box::new(lhs), list, negated));
        }
        if self.eat_kw("is") {
            let neg = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull(Box::new(lhs), neg));
        }
        let op = match self.peek() {
            Tok::Sym("=") => Some(CmpOp::Eq),
            Tok::Sym("<>") => Some(CmpOp::Ne),
            Tok::Sym("<") => Some(CmpOp::Lt),
            Tok::Sym("<=") => Some(CmpOp::Le),
            Tok::Sym(">") => Some(CmpOp::Gt),
            Tok::Sym(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(AstExpr::Cmp(Box::new(lhs), op, Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => ArithOp::Add,
                Tok::Sym("-") => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("*") => ArithOp::Mul,
                Tok::Sym("/") => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = AstExpr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr> {
        if self.try_sym("-") {
            let e = self.unary_expr()?;
            return Ok(match e {
                AstExpr::Lit(Value::Int(i)) => AstExpr::Lit(Value::Int(-i)),
                AstExpr::Lit(Value::Num(f)) => AstExpr::Lit(Value::Num(-f)),
                other => AstExpr::Arith(
                    Box::new(AstExpr::Lit(Value::Int(0))),
                    ArithOp::Sub,
                    Box::new(other),
                ),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.bump() {
            Tok::Int(i) => Ok(AstExpr::Lit(Value::Int(i))),
            Tok::Num(f) => Ok(AstExpr::Lit(Value::Num(f))),
            Tok::Str(s) => Ok(AstExpr::Lit(Value::str(&s))),
            Tok::Sym("(") => {
                let e = self.expr()?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Tok::Sym("*") => Ok(AstExpr::CountStar), // only valid inside count()
            Tok::Ident(id) => self.ident_expr(id),
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    fn ident_expr(&mut self, id: String) -> Result<AstExpr> {
        match id.as_str() {
            "date" => {
                // date 'YYYY-MM-DD'
                match self.bump() {
                    Tok::Str(s) => Date::parse(&s)
                        .map(|d| AstExpr::Lit(Value::Date(d)))
                        .ok_or_else(|| self.err("invalid date literal")),
                    _ => Err(self.err("expected string after DATE")),
                }
            }
            "interval" => {
                let n = match self.bump() {
                    Tok::Str(s) => s
                        .trim()
                        .parse::<i64>()
                        .map_err(|_| self.err("invalid interval quantity"))?,
                    Tok::Int(i) => i,
                    _ => return Err(self.err("expected quantity after INTERVAL")),
                };
                let unit = match self.ident()?.as_str() {
                    "day" | "days" => IntervalUnit::Day,
                    "month" | "months" => IntervalUnit::Month,
                    "year" | "years" => IntervalUnit::Year,
                    _ => return Err(self.err("unknown interval unit")),
                };
                Ok(AstExpr::Interval(n, unit))
            }
            "null" => Ok(AstExpr::Lit(Value::Null)),
            "true" => Ok(AstExpr::Lit(Value::Bool(true))),
            "false" => Ok(AstExpr::Lit(Value::Bool(false))),
            "case" => {
                let mut branches = Vec::new();
                while self.eat_kw("when") {
                    let c = self.expr()?;
                    self.expect_kw("then")?;
                    let v = self.expr()?;
                    branches.push((c, v));
                }
                let else_ = if self.eat_kw("else") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw("end")?;
                Ok(AstExpr::Case(branches, else_))
            }
            "extract" => {
                self.eat_sym("(")?;
                self.expect_kw("year")?;
                self.expect_kw("from")?;
                let e = self.expr()?;
                self.eat_sym(")")?;
                Ok(AstExpr::ExtractYear(Box::new(e)))
            }
            "substring" => {
                self.eat_sym("(")?;
                let e = self.expr()?;
                self.expect_kw("from")?;
                let start = match self.bump() {
                    Tok::Int(i) if i >= 1 => i as usize,
                    _ => return Err(self.err("substring start must be a positive integer")),
                };
                self.expect_kw("for")?;
                let len = match self.bump() {
                    Tok::Int(i) if i >= 0 => i as usize,
                    _ => return Err(self.err("substring length must be a non-negative integer")),
                };
                self.eat_sym(")")?;
                Ok(AstExpr::Substring(Box::new(e), start, len))
            }
            "count" | "sum" | "avg" | "min" | "max" => {
                self.eat_sym("(")?;
                let distinct = self.eat_kw("distinct");
                let inner = self.expr()?;
                self.eat_sym(")")?;
                let func = match (id.as_str(), distinct) {
                    ("count", true) => AggFunc::CountDistinct,
                    ("count", false) => AggFunc::Count,
                    ("sum", _) => AggFunc::Sum,
                    ("avg", _) => AggFunc::Avg,
                    ("min", _) => AggFunc::Min,
                    ("max", _) => AggFunc::Max,
                    _ => unreachable!(),
                };
                if matches!(inner, AstExpr::CountStar) {
                    if func == AggFunc::Count {
                        Ok(AstExpr::CountStar)
                    } else {
                        Err(self.err("'*' only valid in count(*)"))
                    }
                } else {
                    Ok(AstExpr::Agg(func, Box::new(inner), distinct))
                }
            }
            _ => {
                // qualified name table.column → column
                if self.try_sym(".") {
                    let col = self.ident()?;
                    Ok(AstExpr::Col(col))
                } else {
                    Ok(AstExpr::Col(id))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query() {
        let q = "select T, avg(P) from Hosp join Ins on S=C \
                 where D='stroke' group by T having avg(P)>100";
        let stmt = parse_select(q).unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.from.len(), 2);
        assert!(stmt.from[1].join_on.is_some());
        assert_eq!(stmt.group_by, vec!["t"]);
        assert!(stmt.having.is_some());
        assert!(matches!(
            stmt.items[1].expr,
            AstExpr::Agg(AggFunc::Avg, _, false)
        ));
    }

    #[test]
    fn parses_tpch_q6_style() {
        let q = "select sum(l_extendedprice * l_discount) as revenue \
                 from lineitem \
                 where l_shipdate >= date '1994-01-01' \
                   and l_shipdate < date '1994-01-01' + interval '1' year \
                   and l_discount between 0.05 and 0.07 \
                   and l_quantity < 24";
        let stmt = parse_select(q).unwrap();
        assert_eq!(stmt.items[0].alias.as_deref(), Some("revenue"));
        let w = stmt.where_.unwrap();
        match w {
            AstExpr::And(parts) => assert_eq!(parts.len(), 4),
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn parses_count_star_and_order_limit() {
        let q = "select D, count(*) from Hosp group by D order by count(*) desc, D limit 10";
        let stmt = parse_select(q).unwrap();
        assert!(matches!(stmt.items[1].expr, AstExpr::CountStar));
        assert_eq!(stmt.order_by.len(), 2);
        assert!(!stmt.order_by[0].1);
        assert!(stmt.order_by[1].1);
        assert_eq!(stmt.limit, Some(10));
    }

    #[test]
    fn parses_in_like_case() {
        let q = "select C from Ins where C in ('a','b') and C not like '%x%' \
                 and P = case when C = 'a' then 1 else 2 end";
        let stmt = parse_select(q).unwrap();
        let w = stmt.where_.unwrap();
        let AstExpr::And(parts) = w else {
            panic!("expected AND")
        };
        assert!(matches!(parts[0], AstExpr::InList(_, _, false)));
        assert!(matches!(parts[1], AstExpr::Like(_, _, true)));
        assert!(matches!(parts[2], AstExpr::Cmp(_, CmpOp::Eq, _)));
    }

    #[test]
    fn parses_extract_and_substring() {
        let q =
            "select extract(year from B) from Hosp where substring(S from 1 for 2) in ('13','31')";
        let stmt = parse_select(q).unwrap();
        assert!(matches!(stmt.items[0].expr, AstExpr::ExtractYear(_)));
    }

    #[test]
    fn string_escapes() {
        let q = "select C from Ins where C = 'O''Brien'";
        let stmt = parse_select(q).unwrap();
        match stmt.where_.unwrap() {
            AstExpr::Cmp(_, _, rhs) => {
                assert_eq!(*rhs, AstExpr::Lit(Value::str("O'Brien")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        let err = parse_select("select from x").unwrap_err();
        assert!(matches!(err, AlgebraError::Parse { .. }));
        assert!(parse_select("select a b c from x").is_err());
        assert!(parse_select("select a from x where 'unterminated").is_err());
        assert!(parse_select("select a from x limit -1").is_err());
    }

    #[test]
    fn qualified_names_drop_table_prefix() {
        let stmt = parse_select("select hosp.D from Hosp").unwrap();
        assert_eq!(stmt.items[0].expr, AstExpr::Col("d".into()));
    }

    #[test]
    fn not_between_and_not_in() {
        let q = "select P from Ins where P not between 1 and 2 and P not in (3, 4)";
        let stmt = parse_select(q).unwrap();
        let AstExpr::And(parts) = stmt.where_.unwrap() else {
            panic!()
        };
        assert!(matches!(parts[0], AstExpr::Between(_, _, _, true)));
        assert!(matches!(parts[1], AstExpr::InList(_, _, true)));
    }
}
