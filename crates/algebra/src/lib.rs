//! # mpq-algebra
//!
//! Relational-algebra substrate for the multi-provider query
//! authorization model (De Capitani di Vimercati et al., VLDB 2017).
//!
//! This crate provides everything the authorization layer (`mpq-core`)
//! and the execution engine (`mpq-exec`) share:
//!
//! * interned identifiers for relations, attributes and subjects
//!   ([`ids`]), plus cheap attribute bitsets ([`attrset`]);
//! * a [`catalog`] describing base relations, their attributes, types
//!   and per-column statistics;
//! * typed runtime [`value`]s and scalar/aggregate [`expr`]essions;
//! * the logical query-[`plan`] tree with exactly the operator algebra
//!   of the paper (projection, selection, cartesian product, join,
//!   group-by, user-defined function, encryption, decryption) plus the
//!   profile-neutral `Sort`/`Limit` needed for TPC-H;
//! * a SQL front-end ([`sql`]) for the paper's
//!   `select … from … where … group by … having` query class;
//! * a plan [`builder`] applying the paper's assumption that
//!   projections are pushed down;
//! * a PostgreSQL-style cardinality [`stats`] estimator standing in for
//!   the optimizer estimates the paper's tool consumed.
//!
//! The design goal is that a *plan node* is the unit the authorization
//! model reasons about: `mpq-core` attaches relation profiles to nodes,
//! computes candidate sets per node, and splices `Encrypt`/`Decrypt`
//! operators into the tree.

pub mod attrset;
pub mod builder;
pub mod catalog;
pub mod error;
pub mod expr;
pub mod ids;
pub mod plan;
pub mod sql;
pub mod stats;
pub mod value;

pub use attrset::AttrSet;
pub use catalog::{Catalog, ColumnDef, RelationDef};
pub use error::{AlgebraError, Result};
pub use expr::{AggExpr, AggFunc, ArithOp, CmpOp, Expr};
pub use ids::{AttrId, NodeId, RelId, SubjectId};
pub use plan::{JoinKind, Operator, PlanNode, QueryPlan};
pub use value::{DataType, Date, Value};
