//! AST → plan construction with the paper's optimization assumptions.
//!
//! The paper assumes plans "produced with classical optimization
//! criteria and, in particular, … projections … pushed down to avoid
//! retrieving data that are not of interest for the query". The builder
//! therefore:
//!
//! 1. pushes projections into the leaves (each [`Operator::Base`]
//!    retrieves only the attributes the query touches);
//! 2. pushes single-relation selections directly above their leaf;
//! 3. builds a left-deep join tree in `FROM` order, turning
//!    cross-relation equality conjuncts into join conditions (falling
//!    back to a cartesian product when no condition links a table);
//! 4. materializes computed grouping expressions as µ (udf) nodes so
//!    that group keys are always attributes, matching the paper's
//!    operator signatures;
//! 5. lowers aggregates into a γ node and rewrites `HAVING` /
//!    `ORDER BY` references into positional [`Expr::AggRef`]s.

use crate::catalog::Catalog;
use crate::error::{AlgebraError, Result};
use crate::expr::{AggExpr, AggFunc, ArithOp, CmpOp, DateField, Expr};
use crate::ids::{AttrId, NodeId, RelId};
use crate::plan::{JoinKind, Operator, QueryPlan};
use crate::sql::{AstExpr, IntervalUnit, SelectStmt};
use crate::value::Value;
use crate::AttrSet;
use std::collections::HashMap;

/// Parse SQL and build a plan in one step.
pub fn plan_sql(catalog: &Catalog, sql: &str) -> Result<QueryPlan> {
    let stmt = crate::sql::parse_select(sql)?;
    build_plan(catalog, &stmt)
}

/// Build a [`QueryPlan`] from a parsed statement.
pub fn build_plan(catalog: &Catalog, stmt: &SelectStmt) -> Result<QueryPlan> {
    Builder::new(catalog, stmt)?.run()
}

struct Builder<'a> {
    catalog: &'a Catalog,
    stmt: &'a SelectStmt,
    /// Aggregates discovered in select/having/order-by, deduplicated.
    aggs: Vec<AggExpr>,
    /// Alias → select-item index.
    aliases: HashMap<String, usize>,
}

impl<'a> Builder<'a> {
    fn new(catalog: &'a Catalog, stmt: &'a SelectStmt) -> Result<Self> {
        let mut aliases = HashMap::new();
        for (i, item) in stmt.items.iter().enumerate() {
            if let Some(a) = &item.alias {
                aliases.insert(a.to_ascii_lowercase(), i);
            }
        }
        Ok(Builder {
            catalog,
            stmt,
            aggs: Vec::new(),
            aliases,
        })
    }

    fn run(mut self) -> Result<QueryPlan> {
        // ---- name resolution & per-relation attribute demand ----------
        let mut rels: Vec<RelId> = Vec::new();
        for t in &self.stmt.from {
            rels.push(self.catalog.relation(&t.name)?.rel);
        }
        let mut demand: AttrSet = AttrSet::new();
        let mut scratch = Vec::new();
        for item in &self.stmt.items {
            collect_cols(&item.expr, &mut scratch);
        }
        for t in &self.stmt.from {
            if let Some(on) = &t.join_on {
                collect_cols(on, &mut scratch);
            }
        }
        if let Some(w) = &self.stmt.where_ {
            collect_cols(w, &mut scratch);
        }
        if let Some(h) = &self.stmt.having {
            collect_cols(h, &mut scratch);
        }
        for (e, _) in &self.stmt.order_by {
            collect_cols(e, &mut scratch);
        }
        for g in &self.stmt.group_by {
            if !self.aliases.contains_key(g) {
                scratch.push(g.clone());
            }
        }
        for name in &scratch {
            // Select-item aliases (e.g. HAVING/ORDER BY referencing an
            // aggregate alias) are not base attributes; their underlying
            // columns are already collected from the select items.
            if self.aliases.contains_key(name) {
                continue;
            }
            demand.insert(self.catalog.attr(name)?);
        }

        // ---- leaves with pushed-down projections ----------------------
        let mut plan = QueryPlan::new();
        let mut subtrees: Vec<(NodeId, AttrSet)> = Vec::new();
        for &rel in &rels {
            let rd = self.catalog.rel(rel);
            let attrs: Vec<AttrId> = rd
                .columns
                .iter()
                .map(|c| c.attr)
                .filter(|a| demand.contains(*a))
                .collect();
            if attrs.is_empty() {
                return Err(AlgebraError::Semantic(format!(
                    "relation {} contributes no attributes to the query",
                    rd.name
                )));
            }
            let set: AttrSet = attrs.iter().copied().collect();
            let id = plan.add_base(rel, attrs);
            subtrees.push((id, set));
        }

        // ---- classify WHERE conjuncts ---------------------------------
        let mut local: Vec<(usize, Expr)> = Vec::new(); // (subtree idx, pred)
        let mut join_conds: Vec<(AttrId, CmpOp, AttrId)> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        if let Some(w) = &self.stmt.where_ {
            let pred = self.lower_scalar(w)?;
            for conj in flatten_and(pred) {
                self.place_conjunct(conj, &subtrees, &mut local, &mut join_conds, &mut residual);
            }
        }

        // Push single-relation selections onto their leaves.
        // Group conjuncts per subtree to emit one Select per leaf.
        let mut per_tree: Vec<Vec<Expr>> = vec![Vec::new(); subtrees.len()];
        for (i, e) in local {
            per_tree[i].push(e);
        }
        for (i, preds) in per_tree.into_iter().enumerate() {
            if !preds.is_empty() {
                let pred = preds
                    .into_iter()
                    .reduce(Expr::and)
                    .expect("non-empty preds");
                let (node, set) = subtrees[i].clone();
                let sel = plan.add(Operator::Select { pred }, vec![node]);
                subtrees[i] = (sel, set);
            }
        }

        // ---- left-deep join tree ---------------------------------------
        let (mut cur, mut cur_set) = subtrees[0].clone();
        for (i, t) in self.stmt.from.iter().enumerate().skip(1) {
            let (right, right_set) = subtrees[i].clone();
            let mut on: Vec<(AttrId, CmpOp, AttrId)> = Vec::new();
            let mut res: Vec<Expr> = Vec::new();
            if let Some(cond) = &t.join_on {
                let lowered = self.lower_scalar(cond)?;
                for conj in flatten_and(lowered) {
                    match split_join_cond(&conj, &cur_set, &right_set) {
                        Some(c) => on.push(c),
                        None => res.push(conj),
                    }
                }
            }
            // Pull applicable WHERE-derived join conditions.
            let mut rest = Vec::new();
            for c in join_conds.drain(..) {
                let (l, _, r) = c;
                if cur_set.contains(l) && right_set.contains(r) {
                    on.push(c);
                } else if cur_set.contains(r) && right_set.contains(l) {
                    on.push((c.2, c.1.flipped(), c.0));
                } else {
                    rest.push(c);
                }
            }
            join_conds = rest;
            let combined = cur_set.union(&right_set);
            cur = if on.is_empty() && res.is_empty() {
                plan.add(Operator::Product, vec![cur, right])
            } else {
                let residual_pred = res.into_iter().reduce(Expr::and);
                plan.add(
                    Operator::Join {
                        kind: JoinKind::Inner,
                        on,
                        residual: residual_pred,
                    },
                    vec![cur, right],
                )
            };
            cur_set = combined;
        }
        // Any join condition never absorbed becomes a residual selection,
        // as do multi-relation non-equi conjuncts.
        for (l, op, r) in join_conds {
            residual.push(Expr::cmp(Expr::Col(l), op, Expr::Col(r)));
        }
        if let Some(pred) = residual.into_iter().reduce(Expr::and) {
            cur = plan.add(Operator::Select { pred }, vec![cur]);
        }

        // ---- grouping & aggregation ------------------------------------
        let has_aggs = self.statement_has_aggregates();
        if has_aggs || !self.stmt.group_by.is_empty() {
            // Materialize computed group keys as µ nodes.
            let mut keys: Vec<AttrId> = Vec::new();
            for g in &self.stmt.group_by {
                if let Some(&idx) = self.aliases.get(g) {
                    let expr = self.lower_scalar(&self.stmt.items[idx].expr)?;
                    match expr {
                        Expr::Col(a) => keys.push(a),
                        computed => {
                            let inputs: Vec<AttrId> = computed.attrs().iter().collect();
                            let output = *inputs.first().ok_or_else(|| {
                                AlgebraError::Semantic(format!(
                                    "group key {g} references no attributes"
                                ))
                            })?;
                            cur = plan.add(
                                Operator::Udf {
                                    name: g.clone(),
                                    inputs,
                                    output,
                                    body: Some(computed),
                                },
                                vec![cur],
                            );
                            keys.push(output);
                        }
                    }
                } else {
                    keys.push(self.catalog.attr(g)?);
                }
            }
            // Collect aggregates from select, having, order-by.
            for item in &self.stmt.items {
                self.collect_aggs(&item.expr, &keys)?;
            }
            if let Some(h) = &self.stmt.having {
                self.collect_aggs(h, &keys)?;
            }
            for (e, _) in &self.stmt.order_by {
                self.collect_aggs(e, &keys)?;
            }
            // Non-aggregate select items must be group keys.
            for item in &self.stmt.items {
                if !contains_agg(&item.expr) {
                    let lowered = self.lower_scalar(&item.expr)?;
                    if let Expr::Col(a) = lowered {
                        if !keys.contains(&a) {
                            return Err(AlgebraError::Semantic(format!(
                                "column {} appears outside GROUP BY",
                                self.catalog.attr_name(a)
                            )));
                        }
                    }
                }
            }
            cur = plan.add(
                Operator::GroupBy {
                    keys,
                    aggs: self.aggs.clone(),
                },
                vec![cur],
            );
            if let Some(h) = &self.stmt.having {
                let pred = self.lower_with_agg_refs(h)?;
                cur = plan.add(Operator::Having { pred }, vec![cur]);
            }
        } else if self.stmt.having.is_some() {
            return Err(AlgebraError::Semantic("HAVING requires aggregation".into()));
        }

        // ---- order by / limit / final projection ------------------------
        if !self.stmt.order_by.is_empty() {
            let mut sort_keys = Vec::new();
            for (e, asc) in &self.stmt.order_by {
                sort_keys.push((self.lower_with_agg_refs(e)?, *asc));
            }
            cur = plan.add(Operator::Sort { keys: sort_keys }, vec![cur]);
        }
        if let Some(n) = self.stmt.limit {
            cur = plan.add(Operator::Limit { n }, vec![cur]);
        }
        if !has_aggs && self.stmt.group_by.is_empty() {
            // Plain projection queries: project to the select list.
            let mut attrs = Vec::new();
            let mut all_plain = true;
            for item in &self.stmt.items {
                match self.lower_scalar(&item.expr)? {
                    Expr::Col(a) => attrs.push(a),
                    computed => {
                        // Computed select item: materialize as µ.
                        let inputs: Vec<AttrId> = computed.attrs().iter().collect();
                        if let Some(&out) = inputs.first() {
                            cur = plan.add(
                                Operator::Udf {
                                    name: item.alias.clone().unwrap_or_else(|| "expr".to_string()),
                                    inputs,
                                    output: out,
                                    body: Some(computed),
                                },
                                vec![cur],
                            );
                            attrs.push(out);
                        } else {
                            all_plain = false;
                        }
                    }
                }
            }
            let schema = plan.schemas()[cur.index()].clone();
            let target: AttrSet = attrs.iter().copied().collect();
            if all_plain && target != schema && !attrs.is_empty() {
                cur = plan.add(Operator::Project { attrs }, vec![cur]);
            }
        }
        plan.set_root(cur);
        plan.validate(self.catalog)?;
        Ok(plan)
    }

    fn statement_has_aggregates(&self) -> bool {
        self.stmt.items.iter().any(|i| contains_agg(&i.expr))
            || self.stmt.having.as_ref().is_some_and(contains_agg)
            || self.stmt.order_by.iter().any(|(e, _)| contains_agg(e))
    }

    fn place_conjunct(
        &self,
        conj: Expr,
        subtrees: &[(NodeId, AttrSet)],
        local: &mut Vec<(usize, Expr)>,
        join_conds: &mut Vec<(AttrId, CmpOp, AttrId)>,
        residual: &mut Vec<Expr>,
    ) {
        let attrs = conj.attrs();
        // Single-relation conjunct?
        if let Some((i, _)) = subtrees
            .iter()
            .enumerate()
            .find(|(_, (_, set))| attrs.is_subset(set))
        {
            local.push((i, conj));
            return;
        }
        // Cross-relation simple comparison?
        if let Expr::Cmp(a, op, b) = &conj {
            if let (Expr::Col(l), Expr::Col(r)) = (a.as_ref(), b.as_ref()) {
                join_conds.push((*l, *op, *r));
                return;
            }
        }
        residual.push(conj);
    }

    /// Lower an AST expression that must not contain aggregates.
    fn lower_scalar(&self, e: &AstExpr) -> Result<Expr> {
        if contains_agg(e) {
            return Err(AlgebraError::Semantic(
                "aggregate in scalar-only context".into(),
            ));
        }
        self.lower(e, None)
    }

    /// Lower an expression replacing aggregates with [`Expr::AggRef`].
    fn lower_with_agg_refs(&self, e: &AstExpr) -> Result<Expr> {
        self.lower(e, Some(&self.aggs))
    }

    fn lower(&self, e: &AstExpr, aggs: Option<&Vec<AggExpr>>) -> Result<Expr> {
        Ok(match e {
            AstExpr::Col(name) => {
                // Aliases of select items resolve through the item:
                // aggregates become AggRefs; computed scalar items
                // resolve to the attribute their µ node outputs.
                if let Some(&idx) = self.aliases.get(name) {
                    let item = &self.stmt.items[idx].expr;
                    match item {
                        AstExpr::Agg(f, inner, distinct) => {
                            if let Some(aggs) = aggs {
                                let target = self.make_agg(f, inner, *distinct, &[])?;
                                if let Some(pos) = aggs.iter().position(|a| *a == target) {
                                    return Ok(Expr::AggRef(pos));
                                }
                            }
                        }
                        AstExpr::CountStar => {
                            if let Some(aggs) = aggs {
                                if let Some(pos) = aggs.iter().position(|a| {
                                    a.func == AggFunc::Count && a.input == Expr::Lit(Value::Int(1))
                                }) {
                                    return Ok(Expr::AggRef(pos));
                                }
                            }
                        }
                        other if !contains_agg(other) => {
                            let lowered = self.lower(other, None)?;
                            return Ok(match lowered {
                                Expr::Col(a) => Expr::Col(a),
                                computed => {
                                    // The µ node materializing this item
                                    // names its output after the first
                                    // referenced attribute.
                                    match computed.attrs().iter().next() {
                                        Some(a) => Expr::Col(a),
                                        None => computed,
                                    }
                                }
                            });
                        }
                        _ => {}
                    }
                }
                Expr::Col(self.catalog.attr(name)?)
            }
            AstExpr::Lit(v) => Expr::Lit(v.clone()),
            AstExpr::Interval(..) => {
                return Err(AlgebraError::Semantic(
                    "INTERVAL literal outside date arithmetic".into(),
                ))
            }
            AstExpr::Agg(f, inner, distinct) => match aggs {
                Some(list) => {
                    let target = self.make_agg(f, inner, *distinct, &[])?;
                    let pos = list
                        .iter()
                        .position(|a| *a == target)
                        .ok_or_else(|| AlgebraError::Semantic("aggregate not registered".into()))?;
                    Expr::AggRef(pos)
                }
                None => {
                    return Err(AlgebraError::Semantic(
                        "aggregate in scalar-only context".into(),
                    ))
                }
            },
            AstExpr::CountStar => match aggs {
                Some(list) => {
                    let pos = list
                        .iter()
                        .position(|a| {
                            a.func == AggFunc::Count && a.input == Expr::Lit(Value::Int(1))
                        })
                        .ok_or_else(|| AlgebraError::Semantic("count(*) not registered".into()))?;
                    Expr::AggRef(pos)
                }
                None => {
                    return Err(AlgebraError::Semantic(
                        "count(*) in scalar-only context".into(),
                    ))
                }
            },
            AstExpr::Cmp(a, op, b) => Expr::cmp(self.lower(a, aggs)?, *op, self.lower(b, aggs)?),
            AstExpr::And(v) => Expr::And(
                v.iter()
                    .map(|x| self.lower(x, aggs))
                    .collect::<Result<_>>()?,
            ),
            AstExpr::Or(v) => Expr::Or(
                v.iter()
                    .map(|x| self.lower(x, aggs))
                    .collect::<Result<_>>()?,
            ),
            AstExpr::Not(x) => Expr::Not(Box::new(self.lower(x, aggs)?)),
            AstExpr::Arith(a, op, b) => {
                // Constant-fold date ± interval at build time.
                let la = self.lower_interval_side(a, aggs)?;
                let lb = self.lower_interval_side(b, aggs)?;
                match (la, lb) {
                    (IntervalOr::Expr(Expr::Lit(Value::Date(d))), IntervalOr::Interval(n, u)) => {
                        let folded = apply_interval(d, n, u, *op)?;
                        Expr::Lit(Value::Date(folded))
                    }
                    (IntervalOr::Expr(x), IntervalOr::Expr(y)) => Expr::arith(x, *op, y),
                    _ => {
                        return Err(AlgebraError::Semantic(
                            "INTERVAL arithmetic requires a date literal left-hand side".into(),
                        ))
                    }
                }
            }
            AstExpr::Like(x, pat, neg) => Expr::Like {
                expr: Box::new(self.lower(x, aggs)?),
                pattern: pat.clone(),
                negated: *neg,
            },
            AstExpr::Between(x, lo, hi, neg) => Expr::Between {
                expr: Box::new(self.lower(x, aggs)?),
                lo: Box::new(self.lower(lo, aggs)?),
                hi: Box::new(self.lower(hi, aggs)?),
                negated: *neg,
            },
            AstExpr::InList(x, list, neg) => Expr::InList {
                expr: Box::new(self.lower(x, aggs)?),
                list: list.clone(),
                negated: *neg,
            },
            AstExpr::Case(branches, else_) => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.lower(c, aggs)?, self.lower(v, aggs)?)))
                    .collect::<Result<_>>()?,
                else_: match else_ {
                    Some(x) => Some(Box::new(self.lower(x, aggs)?)),
                    None => None,
                },
            },
            AstExpr::IsNull(x, neg) => Expr::IsNull {
                expr: Box::new(self.lower(x, aggs)?),
                negated: *neg,
            },
            AstExpr::ExtractYear(x) => Expr::Extract {
                field: DateField::Year,
                expr: Box::new(self.lower(x, aggs)?),
            },
            AstExpr::Substring(x, s, l) => Expr::Substring {
                expr: Box::new(self.lower(x, aggs)?),
                start: *s,
                len: *l,
            },
        })
    }

    fn lower_interval_side(&self, e: &AstExpr, aggs: Option<&Vec<AggExpr>>) -> Result<IntervalOr> {
        match e {
            AstExpr::Interval(n, u) => Ok(IntervalOr::Interval(*n, *u)),
            other => Ok(IntervalOr::Expr(self.lower(other, aggs)?)),
        }
    }

    fn make_agg(
        &self,
        f: &AggFunc,
        inner: &AstExpr,
        _distinct: bool,
        keys: &[AttrId],
    ) -> Result<AggExpr> {
        let input = self.lower_scalar(inner)?;
        let ins = input.attrs();
        let output = ins
            .iter()
            .next()
            .or_else(|| keys.first().copied())
            .ok_or_else(|| AlgebraError::Semantic("aggregate references no attribute".into()))?;
        Ok(AggExpr {
            func: *f,
            input,
            output,
        })
    }

    fn collect_aggs(&mut self, e: &AstExpr, keys: &[AttrId]) -> Result<()> {
        match e {
            AstExpr::Agg(f, inner, distinct) => {
                let ag = self.make_agg(f, inner, *distinct, keys)?;
                if !self.aggs.contains(&ag) {
                    self.aggs.push(ag);
                }
            }
            AstExpr::CountStar => {
                let output = keys.first().copied().ok_or_else(|| {
                    AlgebraError::Semantic(
                        "count(*) without GROUP BY keys needs a named column".into(),
                    )
                })?;
                let ag = AggExpr::count_star(output);
                if !self.aggs.contains(&ag) {
                    self.aggs.push(ag);
                }
            }
            AstExpr::Cmp(a, _, b) | AstExpr::Arith(a, _, b) => {
                self.collect_aggs(a, keys)?;
                self.collect_aggs(b, keys)?;
            }
            AstExpr::And(v) | AstExpr::Or(v) => {
                for x in v {
                    self.collect_aggs(x, keys)?;
                }
            }
            AstExpr::Not(x)
            | AstExpr::Like(x, _, _)
            | AstExpr::IsNull(x, _)
            | AstExpr::ExtractYear(x)
            | AstExpr::Substring(x, _, _) => self.collect_aggs(x, keys)?,
            AstExpr::Between(a, lo, hi, _) => {
                self.collect_aggs(a, keys)?;
                self.collect_aggs(lo, keys)?;
                self.collect_aggs(hi, keys)?;
            }
            AstExpr::InList(x, _, _) => self.collect_aggs(x, keys)?,
            AstExpr::Case(branches, else_) => {
                for (c, v) in branches {
                    self.collect_aggs(c, keys)?;
                    self.collect_aggs(v, keys)?;
                }
                if let Some(x) = else_ {
                    self.collect_aggs(x, keys)?;
                }
            }
            AstExpr::Col(_) | AstExpr::Lit(_) | AstExpr::Interval(..) => {}
        }
        Ok(())
    }
}

enum IntervalOr {
    Expr(Expr),
    Interval(i64, IntervalUnit),
}

fn apply_interval(
    d: crate::value::Date,
    n: i64,
    u: IntervalUnit,
    op: ArithOp,
) -> Result<crate::value::Date> {
    let n = match op {
        ArithOp::Add => n,
        ArithOp::Sub => -n,
        _ => return Err(AlgebraError::Semantic("INTERVAL only supports +/-".into())),
    } as i32;
    Ok(match u {
        IntervalUnit::Day => d.add_days(n),
        IntervalUnit::Month => d.add_months(n),
        IntervalUnit::Year => d.add_years(n),
    })
}

fn flatten_and(e: Expr) -> Vec<Expr> {
    match e {
        Expr::And(v) => v.into_iter().flat_map(flatten_and).collect(),
        other => vec![other],
    }
}

fn split_join_cond(e: &Expr, left: &AttrSet, right: &AttrSet) -> Option<(AttrId, CmpOp, AttrId)> {
    if let Expr::Cmp(a, op, b) = e {
        if let (Expr::Col(l), Expr::Col(r)) = (a.as_ref(), b.as_ref()) {
            if left.contains(*l) && right.contains(*r) {
                return Some((*l, *op, *r));
            }
            if left.contains(*r) && right.contains(*l) {
                return Some((*r, op.flipped(), *l));
            }
        }
    }
    None
}

fn collect_cols(e: &AstExpr, out: &mut Vec<String>) {
    match e {
        AstExpr::Col(n) => out.push(n.clone()),
        AstExpr::Lit(_) | AstExpr::Interval(..) | AstExpr::CountStar => {}
        AstExpr::Agg(_, x, _)
        | AstExpr::Not(x)
        | AstExpr::Like(x, _, _)
        | AstExpr::IsNull(x, _)
        | AstExpr::ExtractYear(x)
        | AstExpr::Substring(x, _, _) => collect_cols(x, out),
        AstExpr::Cmp(a, _, b) | AstExpr::Arith(a, _, b) => {
            collect_cols(a, out);
            collect_cols(b, out);
        }
        AstExpr::And(v) | AstExpr::Or(v) => {
            for x in v {
                collect_cols(x, out);
            }
        }
        AstExpr::Between(a, lo, hi, _) => {
            collect_cols(a, out);
            collect_cols(lo, out);
            collect_cols(hi, out);
        }
        AstExpr::InList(x, _, _) => collect_cols(x, out),
        AstExpr::Case(branches, else_) => {
            for (c, v) in branches {
                collect_cols(c, out);
                collect_cols(v, out);
            }
            if let Some(x) = else_ {
                collect_cols(x, out);
            }
        }
    }
}

fn contains_agg(e: &AstExpr) -> bool {
    match e {
        AstExpr::Agg(..) | AstExpr::CountStar => true,
        AstExpr::Col(_) | AstExpr::Lit(_) | AstExpr::Interval(..) => false,
        AstExpr::Not(x)
        | AstExpr::Like(x, _, _)
        | AstExpr::IsNull(x, _)
        | AstExpr::ExtractYear(x)
        | AstExpr::Substring(x, _, _) => contains_agg(x),
        AstExpr::Cmp(a, _, b) | AstExpr::Arith(a, _, b) => contains_agg(a) || contains_agg(b),
        AstExpr::And(v) | AstExpr::Or(v) => v.iter().any(contains_agg),
        AstExpr::Between(a, lo, hi, _) => contains_agg(a) || contains_agg(lo) || contains_agg(hi),
        AstExpr::InList(x, _, _) => contains_agg(x),
        AstExpr::Case(branches, else_) => {
            branches
                .iter()
                .any(|(c, v)| contains_agg(c) || contains_agg(v))
                || else_.as_deref().is_some_and(contains_agg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::plan::Operator as Op;

    fn ops(plan: &QueryPlan) -> Vec<&'static str> {
        plan.postorder()
            .into_iter()
            .map(|id| plan.node(id).op.name())
            .collect()
    }

    #[test]
    fn builds_running_example() {
        let cat = Catalog::paper_running_example();
        let plan = plan_sql(
            &cat,
            "select T, avg(P) from Hosp join Ins on S=C \
             where D='stroke' group by T having avg(P)>100",
        )
        .unwrap();
        // Expected shape: Base(Hosp) → σ → ⋈ with Base(Ins) → γ → having.
        assert_eq!(ops(&plan), vec!["Base", "σ", "Base", "⋈", "γ", "σᵧ"]);
        // Projection pushdown: Hosp leaf retrieves only S, D, T.
        let base = plan
            .postorder()
            .into_iter()
            .find(|&id| matches!(plan.node(id).op, Op::Base { .. }))
            .unwrap();
        if let Op::Base { attrs, .. } = &plan.node(base).op {
            let names: Vec<&str> = attrs.iter().map(|a| cat.attr_name(*a)).collect();
            assert_eq!(names, vec!["S", "D", "T"]);
        }
    }

    #[test]
    fn where_join_condition_discovered() {
        let cat = Catalog::paper_running_example();
        let plan = plan_sql(
            &cat,
            "select T, avg(P) from Hosp, Ins where S=C and D='stroke' group by T",
        )
        .unwrap();
        assert!(ops(&plan).contains(&"⋈"));
        assert!(!ops(&plan).contains(&"×"));
    }

    #[test]
    fn cartesian_product_when_unlinked() {
        let cat = Catalog::paper_running_example();
        let plan = plan_sql(&cat, "select T, P from Hosp, Ins").unwrap();
        assert!(ops(&plan).contains(&"×"));
    }

    #[test]
    fn plain_projection_query() {
        let cat = Catalog::paper_running_example();
        let plan = plan_sql(&cat, "select S, T from Hosp where D='stroke'").unwrap();
        let o = ops(&plan);
        // D is needed by the σ, so the leaf retrieves it; the explicit
        // final projection then drops it.
        assert_eq!(o, vec!["Base", "σ", "π"]);
        let schemas = plan.schemas();
        let root_schema = &schemas[plan.root().index()];
        assert!(root_schema.len() >= 2);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let cat = Catalog::paper_running_example();
        let err = plan_sql(&cat, "select S, avg(P) from Hosp, Ins group by T").unwrap_err();
        assert!(matches!(err, AlgebraError::Semantic(_)));
    }

    #[test]
    fn having_without_aggregate_rejected() {
        let cat = Catalog::paper_running_example();
        let err = plan_sql(&cat, "select S from Hosp having S > 1").unwrap_err();
        assert!(matches!(err, AlgebraError::Semantic(_)));
    }

    #[test]
    fn interval_folding() {
        let mut cat = Catalog::new();
        cat.add_relation("t", &[("d1", crate::DataType::Date)])
            .unwrap();
        let plan = plan_sql(
            &cat,
            "select d1 from t where d1 < date '1994-01-01' + interval '1' year",
        )
        .unwrap();
        let sel = plan
            .postorder()
            .into_iter()
            .find(|&id| matches!(plan.node(id).op, Op::Select { .. }))
            .unwrap();
        if let Op::Select { pred } = &plan.node(sel).op {
            let s = pred.to_string();
            assert!(s.contains("1995-01-01"), "{s}");
        }
    }

    #[test]
    fn order_and_limit_nodes() {
        let cat = Catalog::paper_running_example();
        let plan = plan_sql(
            &cat,
            "select D, count(*) from Hosp group by D order by count(*) desc limit 5",
        )
        .unwrap();
        let o = ops(&plan);
        assert_eq!(o, vec!["Base", "γ", "sort", "limit"]);
    }

    #[test]
    fn computed_group_key_becomes_udf() {
        let mut cat = Catalog::new();
        cat.add_relation(
            "orders2",
            &[
                ("ok", crate::DataType::Int),
                ("odate", crate::DataType::Date),
                ("oprice", crate::DataType::Num),
            ],
        )
        .unwrap();
        let plan = plan_sql(
            &cat,
            "select extract(year from odate) as oyear, sum(oprice) \
             from orders2 group by oyear",
        )
        .unwrap();
        assert!(ops(&plan).contains(&"µ"));
    }

    #[test]
    fn having_references_alias() {
        let cat = Catalog::paper_running_example();
        let plan = plan_sql(
            &cat,
            "select T, avg(P) as ap from Hosp, Ins where S=C group by T having ap > 10",
        )
        .unwrap();
        assert!(ops(&plan).contains(&"σᵧ"));
    }
}

// ---------------------------------------------------------------------------
// Column pruning
// ---------------------------------------------------------------------------

/// Insert mid-plan projections dropping columns after their last use
/// (the paper assumes plans "produced with classical optimization
/// criteria"; PostgreSQL likewise narrows intermediate tuples). Only
/// *visible* columns are affected — implicit attributes and equivalence
/// classes in relation profiles are untouched, so authorization
/// semantics are preserved while intermediate results (and hence
/// transfer/encryption costs) shrink.
pub fn prune_columns(plan: &QueryPlan, catalog: &Catalog) -> QueryPlan {
    use crate::plan::Operator as Op;
    let schemas = plan.schemas();
    // needed[child]: attributes the parent chain requires from `child`.
    let mut needed: Vec<AttrSet> = vec![AttrSet::new(); plan.len()];
    let order = plan.postorder();
    needed[plan.root().index()] = schemas[plan.root().index()].clone();
    for &id in order.iter().rev() {
        let node = plan.node(id);
        let pass = needed[id.index()].clone();
        match &node.op {
            Op::Base { .. } => {}
            Op::Project { attrs } => {
                let set: AttrSet = attrs.iter().copied().collect();
                needed[node.children[0].index()] = set;
            }
            Op::Select { pred } | Op::Having { pred } => {
                let mut n = pass;
                n.union_with(&pred.attrs());
                needed[node.children[0].index()] = n.intersect(&schemas[node.children[0].index()]);
            }
            Op::Product => {
                for &c in &node.children {
                    needed[c.index()] = pass.intersect(&schemas[c.index()]);
                }
            }
            Op::Join { on, residual, .. } => {
                let mut n = pass;
                for (l, _, r) in on {
                    n.insert(*l);
                    n.insert(*r);
                }
                if let Some(resid) = residual {
                    n.union_with(&resid.attrs());
                }
                for &c in &node.children {
                    needed[c.index()] = n.intersect(&schemas[c.index()]);
                }
            }
            Op::GroupBy { keys, aggs } => {
                let mut n: AttrSet = keys.iter().copied().collect();
                for ag in aggs {
                    n.union_with(&ag.input.attrs());
                    n.insert(ag.output);
                }
                needed[node.children[0].index()] = n.intersect(&schemas[node.children[0].index()]);
            }
            Op::Udf { inputs, output, .. } => {
                let mut n = pass;
                n.remove(*output);
                for a in inputs {
                    n.insert(*a);
                }
                needed[node.children[0].index()] = n.intersect(&schemas[node.children[0].index()]);
            }
            Op::Encrypt { attrs } | Op::Decrypt { attrs } => {
                let mut n = pass;
                for a in attrs {
                    n.insert(*a);
                }
                needed[node.children[0].index()] = n.intersect(&schemas[node.children[0].index()]);
            }
            Op::Sort { keys } => {
                let mut n = pass;
                for (e, _) in keys {
                    n.union_with(&e.attrs());
                }
                needed[node.children[0].index()] = n.intersect(&schemas[node.children[0].index()]);
            }
            Op::Limit { .. } => {
                needed[node.children[0].index()] = pass;
            }
        }
    }
    // Splice projections where a child produces more than its parent
    // consumes. Keep leaves and existing projections untouched.
    let mut out = plan.clone();
    let parents = plan.parents();
    for &id in &order {
        let node = plan.node(id);
        // Leaves and projections are already narrow; group-by/having
        // outputs must stay intact because parents reference aggregate
        // results positionally (HAVING/ORDER BY `AggRef`s).
        if matches!(
            node.op,
            Op::Base { .. } | Op::Project { .. } | Op::GroupBy { .. } | Op::Having { .. }
        ) {
            continue;
        }
        // Never separate a HAVING or aggregate-sorting node from its
        // group-by child.
        if let Some(p) = parents[id.index()] {
            if matches!(plan.node(p).op, Op::Having { .. } | Op::Sort { .. }) {
                continue;
            }
        }
        let want = &needed[id.index()];
        let have = &schemas[id.index()];
        if !want.is_empty() && want != have && want.is_subset(have) {
            out.splice_above(
                id,
                Op::Project {
                    attrs: want.iter().collect(),
                },
            );
        }
    }
    debug_assert!(out.validate(catalog).is_ok());
    out
}

#[cfg(test)]
mod prune_tests {
    use super::*;
    use crate::catalog::Catalog;

    #[test]
    fn drops_filter_columns_after_use() {
        let cat = Catalog::paper_running_example();
        // select S from Hosp where D='stroke': D is dead above the σ.
        let plan = plan_sql(&cat, "select S, T from Hosp where D='stroke'").unwrap();
        let pruned = prune_columns(&plan, &cat);
        pruned.validate(&cat).unwrap();
        let schemas = pruned.schemas();
        let d = cat.attr("D").unwrap();
        // Some node above the σ no longer carries D.
        let sel = pruned
            .postorder()
            .into_iter()
            .find(|&id| matches!(pruned.node(id).op, Operator::Select { .. }))
            .unwrap();
        let parent = pruned.parents()[sel.index()].unwrap();
        assert!(!schemas[parent.index()].contains(d), "D pruned above σ");
    }

    #[test]
    fn preserves_root_schema_and_semantics() {
        let cat = Catalog::paper_running_example();
        let plan = plan_sql(
            &cat,
            "select T, avg(P) from Hosp join Ins on S=C where D='stroke' group by T",
        )
        .unwrap();
        let pruned = prune_columns(&plan, &cat);
        pruned.validate(&cat).unwrap();
        assert_eq!(
            plan.schemas()[plan.root().index()],
            pruned.schemas()[pruned.root().index()]
        );
    }
}
