//! Compact interned identifiers.
//!
//! Attributes, relations, subjects and plan nodes are all referenced by
//! small integer ids. Interning happens in the [`crate::catalog::Catalog`]
//! (attributes, relations) and in `mpq-core`'s subject registry
//! (subjects); ids are only meaningful relative to the structure that
//! interned them.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Index usable for `Vec` addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `Vec` index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                Self(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// An attribute of some base relation, interned in a [`crate::Catalog`].
    ///
    /// Attribute ids are global within a catalog (not scoped per
    /// relation) because the paper's profiles mix attributes of several
    /// relations in one set (e.g. the equivalence class `{S, C}` spans
    /// `Hosp` and `Ins`).
    AttrId, "a"
);

define_id!(
    /// A base relation interned in a [`crate::Catalog`].
    RelId, "r"
);

define_id!(
    /// A subject: a user, a data authority, or a cloud provider
    /// (Definition 2.1 of the paper). Interned by `mpq-core`.
    SubjectId, "s"
);

define_id!(
    /// A node of a [`crate::QueryPlan`] arena.
    NodeId, "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let a = AttrId::from_index(42);
        assert_eq!(a.index(), 42);
        assert_eq!(format!("{a}"), "a42");
        assert_eq!(format!("{a:?}"), "a42");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(AttrId(1) < AttrId(2));
        assert!(NodeId(0) < NodeId(7));
    }

    #[test]
    fn distinct_id_types_exist() {
        // Purely a compile-time property; keep a runtime touchpoint.
        assert_eq!(RelId(3).index(), 3);
        assert_eq!(SubjectId(9).index(), 9);
    }
}
