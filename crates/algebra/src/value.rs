//! Runtime values and data types.
//!
//! The execution engine is row-oriented; a row is a `Vec<Value>`.
//! Encrypted cells are represented by [`Value::Enc`], which carries the
//! ciphertext together with the scheme tag so that the evaluator knows
//! which operations the cell still supports (equality for deterministic
//! encryption, ordering for OPE, addition for Paillier).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Logical column types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (keys, counts).
    Int,
    /// 64-bit float; TPC-H `decimal(15,2)` columns are carried as
    /// floats and re-encoded as fixed-point integers when encrypted
    /// homomorphically.
    Num,
    /// UTF-8 string.
    Str,
    /// Calendar date (days since 1970-01-01).
    Date,
    /// Boolean.
    Bool,
}

/// Encryption scheme tags, mirroring the four schemes of the paper's
/// evaluation (§7): randomized and deterministic symmetric encryption,
/// an order-preserving scheme, and the Paillier cryptosystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EncScheme {
    /// Randomized symmetric encryption: no operations supported.
    Random,
    /// Deterministic symmetric encryption: equality comparisons.
    Deterministic,
    /// Order-preserving encryption: equality and ordering.
    Ope,
    /// Additively homomorphic (Paillier): ciphertext addition → SUM/AVG.
    Paillier,
}

impl EncScheme {
    /// `true` if ciphertexts of this scheme can be compared for equality.
    pub fn supports_equality(self) -> bool {
        matches!(self, EncScheme::Deterministic | EncScheme::Ope)
    }

    /// `true` if ciphertexts of this scheme preserve plaintext order.
    pub fn supports_order(self) -> bool {
        matches!(self, EncScheme::Ope)
    }

    /// `true` if ciphertexts can be summed without decryption.
    pub fn supports_sum(self) -> bool {
        matches!(self, EncScheme::Paillier)
    }
}

/// An encrypted cell: ciphertext bytes plus the metadata needed to
/// evaluate the operations the scheme supports.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EncValue {
    /// Scheme the cell is encrypted under.
    pub scheme: EncScheme,
    /// Identifier of the key (Definition 6.1 clusters attributes by the
    /// equivalence classes of the root profile; all attributes in one
    /// cluster share a key id so encrypted joins keep working).
    pub key_id: u32,
    /// Ciphertext. For OPE this is a big-endian 8-byte order-preserving
    /// code; for Paillier a bignum; otherwise opaque bytes.
    pub bytes: Arc<[u8]>,
}

/// A runtime value.
///
/// The derived `PartialEq` is *structural* (used by plan equality and
/// literal deduplication); SQL comparison semantics live in
/// [`Value::sql_eq`] / [`Value::sql_cmp`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Numeric (float-carried decimal).
    Num(f64),
    /// String.
    Str(Arc<str>),
    /// Date (days since epoch).
    Date(Date),
    /// Encrypted cell.
    Enc(EncValue),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for other types.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for other types.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view; `None` for other types.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The logical type of this value, if it is a plaintext non-null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Num(_) => Some(DataType::Num),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Null | Value::Enc(_) => None,
        }
    }

    /// Canonical byte encoding used as encryption plaintext. The
    /// encoding is self-describing (type tag byte first) so decryption
    /// restores the exact value.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Value::Null => vec![0],
            Value::Bool(b) => vec![1, *b as u8],
            Value::Int(i) => {
                let mut v = vec![2];
                v.extend_from_slice(&i.to_be_bytes());
                v
            }
            Value::Num(f) => {
                let mut v = vec![3];
                v.extend_from_slice(&f.to_be_bytes());
                v
            }
            Value::Str(s) => {
                let mut v = vec![4];
                v.extend_from_slice(s.as_bytes());
                v
            }
            Value::Date(d) => {
                let mut v = vec![5];
                v.extend_from_slice(&d.0.to_be_bytes());
                v
            }
            Value::Enc(e) => {
                // Re-encrypting a ciphertext is allowed (onion-style);
                // encode scheme + key + bytes.
                let mut v = vec![6, e.scheme as u8];
                v.extend_from_slice(&e.key_id.to_be_bytes());
                v.extend_from_slice(&e.bytes);
                v
            }
        }
    }

    /// Inverse of [`Value::canonical_bytes`].
    pub fn from_canonical_bytes(b: &[u8]) -> Option<Value> {
        let (&tag, rest) = b.split_first()?;
        Some(match tag {
            0 => Value::Null,
            1 => Value::Bool(*rest.first()? != 0),
            2 => Value::Int(i64::from_be_bytes(rest.try_into().ok()?)),
            3 => Value::Num(f64::from_be_bytes(rest.try_into().ok()?)),
            4 => Value::Str(Arc::from(std::str::from_utf8(rest).ok()?)),
            5 => Value::Date(Date(i32::from_be_bytes(rest.try_into().ok()?))),
            6 => {
                let scheme = match *rest.first()? {
                    0 => EncScheme::Random,
                    1 => EncScheme::Deterministic,
                    2 => EncScheme::Ope,
                    _ => EncScheme::Paillier,
                };
                let key_id = u32::from_be_bytes(rest.get(1..5)?.try_into().ok()?);
                Value::Enc(EncValue {
                    scheme,
                    key_id,
                    bytes: Arc::from(rest.get(5..)?),
                })
            }
            _ => return None,
        })
    }

    /// Approximate in-memory width in bytes (used by the cost model for
    /// data-size estimation; encrypted cells report their expanded
    /// ciphertext size).
    pub fn width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Num(_) => 8,
            Value::Str(s) => s.len(),
            Value::Date(_) => 4,
            Value::Enc(e) => e.bytes.len(),
        }
    }

    /// SQL-style comparison: `None` when either side is NULL or the
    /// values are incomparable (type mismatch, unsupported ciphertext
    /// comparison).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Num(b)) => (*a as f64).partial_cmp(b),
            (Value::Num(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Date(a), Value::Date(b)) => Some(a.0.cmp(&b.0)),
            (Value::Enc(a), Value::Enc(b)) => {
                if a.scheme != b.scheme || a.key_id != b.key_id {
                    return None;
                }
                if a.scheme.supports_order() {
                    Some(a.bytes.cmp(&b.bytes))
                } else if a.scheme.supports_equality() {
                    if a.bytes == b.bytes {
                        Some(Ordering::Equal)
                    } else {
                        // Deterministic ciphertexts only certify
                        // (in)equality; report an arbitrary consistent
                        // order for hashing-free comparisons.
                        None
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Equality usable for joins and grouping: NULL ≠ NULL (SQL
    /// semantics); deterministic ciphertexts compare byte-wise.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Enc(a), Value::Enc(b)) => {
                a.scheme.supports_equality()
                    && a.scheme == b.scheme
                    && a.key_id == b.key_id
                    && a.bytes == b.bytes
            }
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}

/// Grouping key wrapper: unlike [`Value::sql_eq`], grouping treats NULLs
/// as equal to each other (SQL GROUP BY semantics) and is hashable.
#[derive(Clone, Debug)]
pub struct GroupKey(pub Value);

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Value::Null, Value::Null) => true,
            (a, b) => a.sql_eq(b),
        }
    }
}
impl Eq for GroupKey {}

impl std::hash::Hash for GroupKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0 {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => (1u8, b).hash(state),
            Value::Int(i) => (2u8, i).hash(state),
            // Hash floats by bits of the canonical value so Int/Num keys
            // that compare equal may still hash differently: grouping
            // columns never mix Int and Num in practice.
            Value::Num(f) => (3u8, f.to_bits()).hash(state),
            Value::Str(s) => (4u8, s.as_bytes()).hash(state),
            Value::Date(d) => (5u8, d.0).hash(state),
            Value::Enc(e) => (6u8, e.key_id, &e.bytes[..]).hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(n) => write!(f, "{n:.2}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Enc(e) => write!(f, "⟨{:?}#{}:{}B⟩", e.scheme, e.key_id, e.bytes.len()),
        }
    }
}

/// Calendar date stored as days since 1970-01-01 (proleptic Gregorian).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Date(pub i32);

impl Date {
    /// Construct from year/month/day. Panics on out-of-range month/day
    /// only via debug assertions; callers validate input.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Date {
        // Days-from-civil algorithm (Howard Hinnant).
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64;
        let mp = ((m as i64) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + (d as i64) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date((era as i64 * 146_097 + doe - 719_468) as i32)
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let y = if m <= 2 { y + 1 } else { y };
        (y as i32, m, d)
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Date> {
        let mut it = s.split('-');
        let y: i32 = it.next()?.parse().ok()?;
        let m: u32 = it.next()?.parse().ok()?;
        let d: u32 = it.next()?.parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(Date::from_ymd(y, m, d))
    }

    /// Add a number of days.
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Add calendar months, clamping the day-of-month.
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.to_ymd();
        let tot = y as i64 * 12 + (m as i64 - 1) + months as i64;
        let ny = (tot.div_euclid(12)) as i32;
        let nm = (tot.rem_euclid(12) + 1) as u32;
        let max_d = days_in_month(ny, nm);
        Date::from_ymd(ny, nm, d.min(max_d))
    }

    /// Add years.
    pub fn add_years(self, years: i32) -> Date {
        self.add_months(years * 12)
    }

    /// Extract the year.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_known_values() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).0, 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).0, -1);
        assert_eq!(Date::from_ymd(2000, 3, 1).0, 11_017);
        let d = Date::parse("1994-01-01").unwrap();
        assert_eq!(d.to_ymd(), (1994, 1, 1));
        assert_eq!(format!("{d}"), "1994-01-01");
    }

    #[test]
    fn date_arithmetic() {
        let d = Date::parse("1995-01-31").unwrap();
        assert_eq!(d.add_months(1).to_ymd(), (1995, 2, 28));
        assert_eq!(d.add_months(12).to_ymd(), (1996, 1, 31));
        assert_eq!(d.add_years(1).to_ymd(), (1996, 1, 31));
        assert_eq!(d.add_days(1).to_ymd(), (1995, 2, 1));
        assert_eq!(
            Date::parse("1996-02-29").unwrap().add_years(1).to_ymd(),
            (1997, 2, 28)
        );
    }

    #[test]
    fn date_roundtrip_sweep() {
        for day in (-20_000..40_000).step_by(17) {
            let d = Date(day);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Date::from_ymd(y, m, dd), d, "day {day}");
        }
    }

    #[test]
    fn parse_rejects_bad_dates() {
        assert!(Date::parse("1994-13-01").is_none());
        assert!(Date::parse("1994-00-01").is_none());
        assert!(Date::parse("1994-01").is_none());
        assert!(Date::parse("abc").is_none());
    }

    #[test]
    fn canonical_bytes_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Num(3.25),
            Value::str("stroke"),
            Value::Date(Date::from_ymd(1994, 1, 1)),
        ];
        for v in vals {
            let b = v.canonical_bytes();
            let back = Value::from_canonical_bytes(&b).unwrap();
            assert!(v.sql_eq(&back) || (v.is_null() && back.is_null()), "{v:?}");
        }
    }

    #[test]
    fn enc_canonical_roundtrip() {
        let e = Value::Enc(EncValue {
            scheme: EncScheme::Deterministic,
            key_id: 7,
            bytes: Arc::from(&[1u8, 2, 3][..]),
        });
        let b = e.canonical_bytes();
        let back = Value::from_canonical_bytes(&b).unwrap();
        match back {
            Value::Enc(ev) => {
                assert_eq!(ev.scheme, EncScheme::Deterministic);
                assert_eq!(ev.key_id, 7);
                assert_eq!(&ev.bytes[..], &[1, 2, 3]);
            }
            other => panic!("expected Enc, got {other:?}"),
        }
    }

    #[test]
    fn sql_comparison_semantics() {
        assert!(Value::Int(1).sql_cmp(&Value::Num(1.5)).unwrap().is_lt());
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(GroupKey(Value::Null) == GroupKey(Value::Null));
        assert!(Value::str("a").sql_cmp(&Value::str("b")).unwrap().is_lt());
    }

    #[test]
    fn deterministic_ciphertext_equality() {
        let mk = |b: &[u8]| {
            Value::Enc(EncValue {
                scheme: EncScheme::Deterministic,
                key_id: 1,
                bytes: Arc::from(b),
            })
        };
        assert!(mk(&[9, 9]).sql_eq(&mk(&[9, 9])));
        assert!(!mk(&[9, 9]).sql_eq(&mk(&[9, 8])));
        // Different keys never compare equal.
        let other_key = Value::Enc(EncValue {
            scheme: EncScheme::Deterministic,
            key_id: 2,
            bytes: Arc::from(&[9u8, 9][..]),
        });
        assert!(!mk(&[9, 9]).sql_eq(&other_key));
    }

    #[test]
    fn ope_ciphertext_order() {
        let mk = |b: &[u8]| {
            Value::Enc(EncValue {
                scheme: EncScheme::Ope,
                key_id: 1,
                bytes: Arc::from(b),
            })
        };
        assert!(mk(&[0, 1]).sql_cmp(&mk(&[0, 2])).unwrap().is_lt());
    }

    #[test]
    fn random_ciphertext_supports_nothing() {
        let mk = |b: &[u8]| {
            Value::Enc(EncValue {
                scheme: EncScheme::Random,
                key_id: 1,
                bytes: Arc::from(b),
            })
        };
        assert!(mk(&[1]).sql_cmp(&mk(&[1])).is_none());
        assert!(!mk(&[1]).sql_eq(&mk(&[1])));
    }
}
