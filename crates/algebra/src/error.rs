//! Error type shared by the algebra layers.

use std::fmt;

/// Errors raised while building catalogs, parsing SQL, or constructing
/// plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// An identifier (relation / attribute) was not found in the catalog.
    UnknownName(String),
    /// A name was registered twice.
    DuplicateName(String),
    /// SQL lexing/parsing failure, with position information.
    Parse { pos: usize, msg: String },
    /// A semantically invalid query (e.g. non-aggregate column outside
    /// GROUP BY).
    Semantic(String),
    /// A structurally invalid plan (bad arity, dangling node, …).
    InvalidPlan(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownName(n) => write!(f, "unknown name: {n}"),
            AlgebraError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            AlgebraError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            AlgebraError::Semantic(m) => write!(f, "semantic error: {m}"),
            AlgebraError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
