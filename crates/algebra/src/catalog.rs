//! Relation catalog: names, types, and interning.
//!
//! A [`Catalog`] is the universe that gives meaning to [`RelId`] and
//! [`AttrId`] values. The paper identifies attributes by short names
//! (`S`, `B`, `D`, `T`, `C`, `P`); TPC-H attribute names are likewise
//! globally unique (`l_orderkey`, `o_orderdate`, …), so the catalog
//! interns attribute names globally and remembers which relation each
//! attribute belongs to.

use crate::attrset::AttrSet;
use crate::error::{AlgebraError, Result};
use crate::ids::{AttrId, RelId};
use crate::value::DataType;
use std::collections::HashMap;

/// A column of a base relation.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    /// Globally interned attribute id.
    pub attr: AttrId,
    /// Column name (globally unique in a catalog).
    pub name: String,
    /// Logical type.
    pub ty: DataType,
}

/// A base relation.
#[derive(Clone, Debug)]
pub struct RelationDef {
    /// Interned relation id.
    pub rel: RelId,
    /// Relation name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl RelationDef {
    /// All attributes of this relation as a set.
    pub fn attr_set(&self) -> AttrSet {
        self.columns.iter().map(|c| c.attr).collect()
    }

    /// All attributes of this relation in declaration order.
    pub fn attrs(&self) -> Vec<AttrId> {
        self.columns.iter().map(|c| c.attr).collect()
    }
}

/// The schema universe: relations and globally interned attributes.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    relations: Vec<RelationDef>,
    rel_by_name: HashMap<String, RelId>,
    attr_names: Vec<String>,
    attr_types: Vec<DataType>,
    attr_owner: Vec<RelId>,
    attr_by_name: HashMap<String, AttrId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a relation with `(column name, type)` pairs.
    ///
    /// Column names must be globally unique across the catalog (as they
    /// are in the paper's examples and in TPC-H); name lookups are
    /// case-insensitive.
    pub fn add_relation(&mut self, name: &str, columns: &[(&str, DataType)]) -> Result<RelId> {
        let lname = name.to_ascii_lowercase();
        if self.rel_by_name.contains_key(&lname) {
            return Err(AlgebraError::DuplicateName(name.to_string()));
        }
        let rel = RelId::from_index(self.relations.len());
        let mut defs = Vec::with_capacity(columns.len());
        for (cname, ty) in columns {
            let lcname = cname.to_ascii_lowercase();
            if self.attr_by_name.contains_key(&lcname) {
                return Err(AlgebraError::DuplicateName(cname.to_string()));
            }
            let attr = AttrId::from_index(self.attr_names.len());
            self.attr_names.push(cname.to_string());
            self.attr_types.push(*ty);
            self.attr_owner.push(rel);
            self.attr_by_name.insert(lcname, attr);
            defs.push(ColumnDef {
                attr,
                name: cname.to_string(),
                ty: *ty,
            });
        }
        self.relations.push(RelationDef {
            rel,
            name: name.to_string(),
            columns: defs,
        });
        self.rel_by_name.insert(lname, rel);
        Ok(rel)
    }

    /// Look up a relation by (case-insensitive) name.
    pub fn relation(&self, name: &str) -> Result<&RelationDef> {
        self.rel_by_name
            .get(&name.to_ascii_lowercase())
            .map(|r| &self.relations[r.index()])
            .ok_or_else(|| AlgebraError::UnknownName(name.to_string()))
    }

    /// Relation definition by id.
    pub fn rel(&self, rel: RelId) -> &RelationDef {
        &self.relations[rel.index()]
    }

    /// All relations.
    pub fn relations(&self) -> &[RelationDef] {
        &self.relations
    }

    /// Look up an attribute by (case-insensitive) name.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.attr_by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| AlgebraError::UnknownName(name.to_string()))
    }

    /// Attribute name.
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attr_names[a.index()]
    }

    /// Attribute type.
    pub fn attr_type(&self, a: AttrId) -> DataType {
        self.attr_types[a.index()]
    }

    /// The relation the attribute belongs to.
    pub fn attr_owner(&self, a: AttrId) -> RelId {
        self.attr_owner[a.index()]
    }

    /// Number of interned attributes (ids are `0..n`).
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Render a set of attributes compactly, paper-style (e.g. `SDT`
    /// when all names are single letters, comma-separated otherwise).
    pub fn render_attrs(&self, set: &AttrSet) -> String {
        let names: Vec<&str> = set.iter().map(|a| self.attr_name(a)).collect();
        if names.iter().all(|n| n.len() == 1) {
            names.concat()
        } else {
            names.join(",")
        }
    }

    /// Build the running-example catalog of the paper: `Hosp(S,B,D,T)`
    /// held by hospital `H` and `Ins(C,P)` held by insurer `I`.
    pub fn paper_running_example() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            "Hosp",
            &[
                ("S", DataType::Str),
                ("B", DataType::Date),
                ("D", DataType::Str),
                ("T", DataType::Str),
            ],
        )
        .expect("static schema");
        c.add_relation("Ins", &[("C", DataType::Str), ("P", DataType::Num)])
            .expect("static schema");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_catalog() {
        let c = Catalog::paper_running_example();
        assert_eq!(c.relations().len(), 2);
        let hosp = c.relation("hosp").unwrap();
        assert_eq!(hosp.columns.len(), 4);
        let s = c.attr("S").unwrap();
        assert_eq!(c.attr_name(s), "S");
        assert_eq!(c.attr_owner(s), hosp.rel);
        let p = c.attr("p").unwrap();
        assert_eq!(c.attr_type(p), DataType::Num);
        assert_eq!(c.num_attrs(), 6);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.add_relation("R", &[("A", DataType::Int)]).unwrap();
        assert!(matches!(
            c.add_relation("r", &[("B", DataType::Int)]),
            Err(AlgebraError::DuplicateName(_))
        ));
        assert!(matches!(
            c.add_relation("S", &[("a", DataType::Int)]),
            Err(AlgebraError::DuplicateName(_))
        ));
    }

    #[test]
    fn unknown_lookups_fail() {
        let c = Catalog::paper_running_example();
        assert!(c.relation("nope").is_err());
        assert!(c.attr("Z").is_err());
    }

    #[test]
    fn render_attrs_paper_style() {
        let c = Catalog::paper_running_example();
        let set: AttrSet = [
            c.attr("S").unwrap(),
            c.attr("D").unwrap(),
            c.attr("T").unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.render_attrs(&set), "SDT");
    }

    #[test]
    fn attr_set_of_relation() {
        let c = Catalog::paper_running_example();
        let hosp = c.relation("Hosp").unwrap();
        assert_eq!(hosp.attr_set().len(), 4);
        assert!(hosp.attr_set().contains(c.attr("B").unwrap()));
        assert!(!hosp.attr_set().contains(c.attr("C").unwrap()));
    }
}
