//! The TPC-H schema (plus alias relations for repeated scans).

use mpq_algebra::{Catalog, DataType, Result};

/// Columns of each base table, with TPC-H types mapped to our value
/// types (`decimal` → `Num`, `char`/`varchar` → `Str`).
const REGION: &[(&str, DataType)] = &[
    ("r_regionkey", DataType::Int),
    ("r_name", DataType::Str),
    ("r_comment", DataType::Str),
];

const NATION: &[(&str, DataType)] = &[
    ("n_nationkey", DataType::Int),
    ("n_name", DataType::Str),
    ("n_regionkey", DataType::Int),
    ("n_comment", DataType::Str),
];

const SUPPLIER: &[(&str, DataType)] = &[
    ("s_suppkey", DataType::Int),
    ("s_name", DataType::Str),
    ("s_address", DataType::Str),
    ("s_nationkey", DataType::Int),
    ("s_phone", DataType::Str),
    ("s_acctbal", DataType::Num),
    ("s_comment", DataType::Str),
];

const PART: &[(&str, DataType)] = &[
    ("p_partkey", DataType::Int),
    ("p_name", DataType::Str),
    ("p_mfgr", DataType::Str),
    ("p_brand", DataType::Str),
    ("p_type", DataType::Str),
    ("p_size", DataType::Int),
    ("p_container", DataType::Str),
    ("p_retailprice", DataType::Num),
    ("p_comment", DataType::Str),
];

const PARTSUPP: &[(&str, DataType)] = &[
    ("ps_partkey", DataType::Int),
    ("ps_suppkey", DataType::Int),
    ("ps_availqty", DataType::Int),
    ("ps_supplycost", DataType::Num),
    ("ps_comment", DataType::Str),
];

const CUSTOMER: &[(&str, DataType)] = &[
    ("c_custkey", DataType::Int),
    ("c_name", DataType::Str),
    ("c_address", DataType::Str),
    ("c_nationkey", DataType::Int),
    ("c_phone", DataType::Str),
    ("c_acctbal", DataType::Num),
    ("c_mktsegment", DataType::Str),
    ("c_comment", DataType::Str),
];

const ORDERS: &[(&str, DataType)] = &[
    ("o_orderkey", DataType::Int),
    ("o_custkey", DataType::Int),
    ("o_orderstatus", DataType::Str),
    ("o_totalprice", DataType::Num),
    ("o_orderdate", DataType::Date),
    ("o_orderpriority", DataType::Str),
    ("o_clerk", DataType::Str),
    ("o_shippriority", DataType::Int),
    ("o_comment", DataType::Str),
];

const LINEITEM: &[(&str, DataType)] = &[
    ("l_orderkey", DataType::Int),
    ("l_partkey", DataType::Int),
    ("l_suppkey", DataType::Int),
    ("l_linenumber", DataType::Int),
    ("l_quantity", DataType::Num),
    ("l_extendedprice", DataType::Num),
    ("l_discount", DataType::Num),
    ("l_tax", DataType::Num),
    ("l_returnflag", DataType::Str),
    ("l_linestatus", DataType::Str),
    ("l_shipdate", DataType::Date),
    ("l_commitdate", DataType::Date),
    ("l_receiptdate", DataType::Date),
    ("l_shipinstruct", DataType::Str),
    ("l_shipmode", DataType::Str),
    ("l_comment", DataType::Str),
];

/// Alias relations: a second (or third) scan of a base table in the
/// same plan. `(alias name, prefix to substitute, base columns, base
/// prefix)`.
pub const ALIASES: &[(&str, &str, &str)] = &[
    // (alias table, alias prefix, base table)
    ("nation2", "n2_", "nation"),
    ("nation3", "n3_", "nation"),
    ("region2", "r2_", "region"),
    ("supplier2", "s2_", "supplier"),
    ("partsupp2", "ps2_", "partsupp"),
    ("lineitem2", "l2_", "lineitem"),
    ("lineitem3", "l3_", "lineitem"),
    ("customer2", "c2_", "customer"),
];

fn base_columns(table: &str) -> &'static [(&'static str, DataType)] {
    match table {
        "region" => REGION,
        "nation" => NATION,
        "supplier" => SUPPLIER,
        "part" => PART,
        "partsupp" => PARTSUPP,
        "customer" => CUSTOMER,
        "orders" => ORDERS,
        "lineitem" => LINEITEM,
        other => panic!("unknown TPC-H table {other}"),
    }
}

fn base_prefix(table: &str) -> &'static str {
    match table {
        "region" => "r_",
        "nation" => "n_",
        "supplier" => "s_",
        "part" => "p_",
        "partsupp" => "ps_",
        "customer" => "c_",
        "orders" => "o_",
        "lineitem" => "l_",
        other => panic!("unknown TPC-H table {other}"),
    }
}

/// Build the TPC-H catalog: the 8 base relations plus the alias
/// relations listed in [`ALIASES`].
pub fn tpch_catalog() -> Catalog {
    try_catalog().expect("static TPC-H schema is valid")
}

fn try_catalog() -> Result<Catalog> {
    let mut c = Catalog::new();
    for table in [
        "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
    ] {
        c.add_relation(table, base_columns(table))?;
    }
    for (alias, prefix, base) in ALIASES {
        let cols: Vec<(String, DataType)> = base_columns(base)
            .iter()
            .map(|(name, ty)| {
                let stripped = name
                    .strip_prefix(base_prefix(base))
                    .expect("TPC-H column prefix");
                (format!("{prefix}{stripped}"), *ty)
            })
            .collect();
        let refs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        c.add_relation(alias, &refs)?;
    }
    Ok(c)
}

/// The base table an alias mirrors, if `name` is an alias.
pub fn alias_base(name: &str) -> Option<&'static str> {
    ALIASES
        .iter()
        .find(|(a, _, _)| *a == name)
        .map(|(_, _, b)| *b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_relations() {
        let c = tpch_catalog();
        assert_eq!(c.relations().len(), 8 + ALIASES.len());
        // The canonical 61 columns across the 8 base tables.
        let base_cols: usize = [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ]
        .iter()
        .map(|t| c.relation(t).unwrap().columns.len())
        .sum();
        assert_eq!(base_cols, 61);
    }

    #[test]
    fn alias_columns_mirror_base() {
        let c = tpch_catalog();
        let l = c.relation("lineitem").unwrap();
        let l2 = c.relation("lineitem2").unwrap();
        assert_eq!(l.columns.len(), l2.columns.len());
        for (a, b) in l.columns.iter().zip(&l2.columns) {
            assert_eq!(a.ty, b.ty);
            assert!(b.name.starts_with("l2_"), "{}", b.name);
        }
        assert_eq!(alias_base("lineitem2"), Some("lineitem"));
        assert_eq!(alias_base("lineitem"), None);
    }

    #[test]
    fn key_attributes_resolve() {
        let c = tpch_catalog();
        for name in [
            "l_orderkey",
            "o_orderkey",
            "ps_partkey",
            "n2_name",
            "l3_suppkey",
            "c2_acctbal",
        ] {
            assert!(c.attr(name).is_ok(), "{name}");
        }
    }
}
