//! # mpq-tpch
//!
//! TPC-H substrate for the paper's evaluation (§7): "we implemented it
//! … and performed a series of experiments using TPC-H (1 GB
//! configuration), as it is the reference benchmark for testing
//! solutions through complex queries."
//!
//! This crate provides:
//!
//! * [`schema`] — the 8 TPC-H relations (61 columns), plus *alias
//!   relations* (`nation2`, `lineitem2`, …) used by queries that scan a
//!   table more than once (the attribute namespace is global, so a
//!   second scan needs distinct attribute ids — PostgreSQL plans
//!   likewise scan such tables twice);
//! * [`gen`] — a deterministic dbgen-style data generator,
//!   scale-factor parameterized, reproducing the value distributions
//!   the 22 queries select on (dates, segments, brands, containers,
//!   comment patterns, …);
//! * [`stats`] — column statistics at a given scale factor, standing in
//!   for the PostgreSQL optimizer estimates the paper's tool consumed;
//! * [`queries`] — hand-built, PostgreSQL-shaped relational-algebra
//!   plans for **all 22** TPC-H queries (decorrelated: scalar
//!   subqueries become joined aggregate branches, EXISTS/IN become
//!   semi/anti-joins).

pub mod gen;
pub mod queries;
pub mod schema;
pub mod stats;

pub use gen::generate;
pub use queries::{query_plan, QUERY_COUNT};
pub use schema::tpch_catalog;
pub use stats::tpch_stats;
