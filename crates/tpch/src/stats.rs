//! Column statistics at a given scale factor.
//!
//! These numbers stand in for the PostgreSQL optimizer estimates the
//! paper's tool consumed: row counts follow dbgen, NDVs follow the
//! generator's value pools, min/max cover the generated ranges, and
//! average widths reflect the column types. The Figure 9/10 harness
//! runs at SF 1 (the paper's 1 GB configuration) purely on these
//! estimates — no data needs materializing.

use crate::gen::{end_order_date, start_date};
use crate::schema::{alias_base, ALIASES};
use mpq_algebra::stats::{ColumnStats, StatsCatalog, TableStats};
use mpq_algebra::{Catalog, DataType};

fn table_rows(scale: f64, table: &str) -> f64 {
    match table {
        "region" => 5.0,
        "nation" => 25.0,
        "supplier" => 10_000.0 * scale,
        "part" => 200_000.0 * scale,
        "partsupp" => 800_000.0 * scale,
        "customer" => 150_000.0 * scale,
        "orders" => 1_500_000.0 * scale,
        "lineitem" => 6_000_000.0 * scale,
        other => panic!("unknown TPC-H table {other}"),
    }
    .max(1.0)
}

/// NDV / range / width for a column, by its *base* (unaliased) name.
fn column_stats(scale: f64, rows: f64, col: &str, ty: DataType) -> ColumnStats {
    let mut s = ColumnStats::default_for(ty, rows);
    let full = |n: f64| n.max(1.0);
    match col {
        // Keys.
        "r_regionkey" => s.ndv = 5.0,
        "n_nationkey" | "n_regionkey" if col == "n_regionkey" => s.ndv = 5.0,
        "n_nationkey" => s.ndv = 25.0,
        "s_suppkey" => s.ndv = full(10_000.0 * scale),
        "s_nationkey" | "c_nationkey" => s.ndv = 25.0,
        "p_partkey" | "ps_partkey" | "l_partkey" => s.ndv = full(200_000.0 * scale),
        "ps_suppkey" | "l_suppkey" => s.ndv = full(10_000.0 * scale),
        "c_custkey" | "o_custkey" => s.ndv = full(150_000.0 * scale),
        "o_orderkey" | "l_orderkey" => s.ndv = full(1_500_000.0 * scale),
        // Low-cardinality categorical columns.
        "r_name" => s.ndv = 5.0,
        "n_name" => s.ndv = 25.0,
        "c_mktsegment" => s.ndv = 5.0,
        "o_orderpriority" => s.ndv = 5.0,
        "o_orderstatus" => s.ndv = 3.0,
        "l_returnflag" => s.ndv = 3.0,
        "l_linestatus" => s.ndv = 2.0,
        "l_shipmode" => s.ndv = 7.0,
        "l_shipinstruct" => s.ndv = 4.0,
        "p_brand" => s.ndv = 25.0,
        "p_type" => s.ndv = 150.0,
        "p_container" => s.ndv = 40.0,
        "p_mfgr" => s.ndv = 5.0,
        "p_size" => {
            s.ndv = 50.0;
            s.min = Some(1.0);
            s.max = Some(50.0);
        }
        // Numeric ranges.
        "l_quantity" => {
            s.ndv = 50.0;
            s.min = Some(1.0);
            s.max = Some(50.0);
        }
        "l_discount" => {
            s.ndv = 11.0;
            s.min = Some(0.0);
            s.max = Some(0.10);
        }
        "l_tax" => {
            s.ndv = 9.0;
            s.min = Some(0.0);
            s.max = Some(0.08);
        }
        "l_extendedprice" => {
            s.min = Some(900.0);
            s.max = Some(50_000.0);
        }
        "o_totalprice" => {
            s.min = Some(900.0);
            s.max = Some(360_000.0);
        }
        "ps_availqty" => {
            s.ndv = 9_999.0;
            s.min = Some(1.0);
            s.max = Some(9_999.0);
        }
        "ps_supplycost" => {
            s.min = Some(1.0);
            s.max = Some(1_000.0);
        }
        "s_acctbal" | "c_acctbal" => {
            s.min = Some(-999.99);
            s.max = Some(9_999.99);
        }
        "p_retailprice" => {
            s.min = Some(900.0);
            s.max = Some(1_000.0);
        }
        // Dates.
        "o_orderdate" => {
            s.ndv = 2_406.0;
            s.min = Some(start_date().0 as f64);
            s.max = Some(end_order_date().0 as f64);
        }
        "l_shipdate" | "l_commitdate" | "l_receiptdate" => {
            s.ndv = 2_526.0;
            s.min = Some(start_date().0 as f64);
            s.max = Some(end_order_date().0 as f64 + 151.0);
        }
        // Wide text columns.
        "l_comment" => s.avg_width = 27.0,
        "o_comment" => s.avg_width = 49.0,
        "c_comment" | "s_comment" | "ps_comment" => s.avg_width = 60.0,
        "p_comment" | "n_comment" | "r_comment" => s.avg_width = 15.0,
        "p_name" => s.avg_width = 33.0,
        "c_name" | "s_name" | "o_clerk" => s.avg_width = 18.0,
        "c_address" | "s_address" => s.avg_width = 25.0,
        "c_phone" | "s_phone" => s.avg_width = 15.0,
        _ => {}
    }
    s.ndv = s.ndv.min(rows).max(1.0);
    s
}

/// Build the statistics catalog at a scale factor (1.0 = the paper's
/// 1 GB configuration).
pub fn tpch_stats(catalog: &Catalog, scale: f64) -> StatsCatalog {
    let mut sc = StatsCatalog::new();
    for rel in catalog.relations() {
        let base = alias_base(&rel.name).unwrap_or(&rel.name);
        let rows = table_rows(scale, base);
        let prefix = ALIASES
            .iter()
            .find(|(a, _, _)| *a == rel.name)
            .map(|(_, p, _)| *p);
        let columns = rel
            .columns
            .iter()
            .map(|c| {
                // Map aliased column names back to the base names.
                let base_name = match prefix {
                    Some(p) => {
                        let stripped = c.name.strip_prefix(p).unwrap_or(&c.name);
                        let base_prefix = match base {
                            "region" => "r_",
                            "nation" => "n_",
                            "supplier" => "s_",
                            "partsupp" => "ps_",
                            "customer" => "c_",
                            "lineitem" => "l_",
                            _ => "",
                        };
                        format!("{base_prefix}{stripped}")
                    }
                    None => c.name.clone(),
                };
                (c.attr, column_stats(scale, rows, &base_name, c.ty))
            })
            .collect();
        sc.set_table(rel.rel, TableStats { rows, columns });
    }
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::tpch_catalog;

    #[test]
    fn sf1_cardinalities() {
        let cat = tpch_catalog();
        let stats = tpch_stats(&cat, 1.0);
        let rows = |t: &str| stats.table(cat.relation(t).unwrap().rel).unwrap().rows;
        assert_eq!(rows("lineitem"), 6_000_000.0);
        assert_eq!(rows("orders"), 1_500_000.0);
        assert_eq!(rows("region"), 5.0);
        // Aliases mirror their base.
        assert_eq!(rows("lineitem2"), 6_000_000.0);
        assert_eq!(rows("nation2"), 25.0);
    }

    #[test]
    fn selective_columns_have_tight_ndv() {
        let cat = tpch_catalog();
        let stats = tpch_stats(&cat, 1.0);
        let ndv = |t: &str, c: &str| {
            stats
                .column(cat.relation(t).unwrap().rel, cat.attr(c).unwrap())
                .unwrap()
                .ndv
        };
        assert_eq!(ndv("region", "r_name"), 5.0);
        assert_eq!(ndv("customer", "c_mktsegment"), 5.0);
        assert_eq!(ndv("part", "p_type"), 150.0);
        assert_eq!(ndv("lineitem", "l_shipmode"), 7.0);
        // Alias columns resolve to base statistics.
        assert_eq!(ndv("nation2", "n2_name"), 25.0);
        assert_eq!(ndv("lineitem2", "l2_shipmode"), 7.0);
    }

    #[test]
    fn date_ranges_enable_range_selectivity() {
        let cat = tpch_catalog();
        let stats = tpch_stats(&cat, 1.0);
        let col = stats
            .column(
                cat.relation("lineitem").unwrap().rel,
                cat.attr("l_shipdate").unwrap(),
            )
            .unwrap();
        assert!(col.min.is_some() && col.max.is_some());
        assert!(col.max.unwrap() > col.min.unwrap());
    }

    #[test]
    fn scale_parameterization() {
        let cat = tpch_catalog();
        let s01 = tpch_stats(&cat, 0.1);
        let rows = s01.table(cat.relation("orders").unwrap().rel).unwrap().rows;
        assert_eq!(rows, 150_000.0);
    }
}
