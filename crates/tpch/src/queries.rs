//! The 22 TPC-H query plans.
//!
//! Plans are hand-built in the decorrelated shape PostgreSQL produces
//! (the paper's tool consumed PostgreSQL plans: "the mapping from
//! relational algebra operators … to the physical PostgreSQL operators
//! was immediate"):
//!
//! * projections are pushed into the leaves;
//! * single-relation selections sit directly above their leaf;
//! * scalar subqueries become separate aggregate branches joined back
//!   (Q2, Q11, Q15, Q17, Q22);
//! * `EXISTS` / `IN` / `NOT EXISTS` become semi-/anti-joins
//!   (Q4, Q16, Q18, Q20, Q21, Q22);
//! * repeated scans of a table use the alias relations of
//!   [`crate::schema::ALIASES`];
//! * computed group keys (`extract(year …)`) are materialized by µ
//!   nodes, matching the paper's udf operator;
//! * aggregate outputs are named after one of their input attributes
//!   (the paper's renaming simplification).

use mpq_algebra::expr::{AggExpr, AggFunc, DateField};
use mpq_algebra::{
    ArithOp, AttrId, Catalog, CmpOp, Date, Expr, JoinKind, NodeId, Operator, QueryPlan, Value,
};

/// Number of TPC-H queries.
pub const QUERY_COUNT: usize = 22;

/// Build the plan for query `q` (1-based, as in the paper's figures).
pub fn query_plan(catalog: &Catalog, q: usize) -> QueryPlan {
    let mut b = QB::new(catalog);
    match q {
        1 => q1(&mut b),
        2 => q2(&mut b),
        3 => q3(&mut b),
        4 => q4(&mut b),
        5 => q5(&mut b),
        6 => q6(&mut b),
        7 => q7(&mut b),
        8 => q8(&mut b),
        9 => q9(&mut b),
        10 => q10(&mut b),
        11 => q11(&mut b),
        12 => q12(&mut b),
        13 => q13(&mut b),
        14 => q14(&mut b),
        15 => q15(&mut b),
        16 => q16(&mut b),
        17 => q17(&mut b),
        18 => q18(&mut b),
        19 => q19(&mut b),
        20 => q20(&mut b),
        21 => q21(&mut b),
        22 => q22(&mut b),
        other => panic!("TPC-H defines queries 1–22, got {other}"),
    }
    // The paper assumes plans with classical optimizations applied;
    // narrow intermediate tuples after each operator's last use of a
    // column (PostgreSQL does the same).
    mpq_algebra::builder::prune_columns(&b.plan, catalog)
}

// ---------------------------------------------------------------------------
// Builder DSL
// ---------------------------------------------------------------------------

struct QB<'a> {
    cat: &'a Catalog,
    plan: QueryPlan,
}

impl<'a> QB<'a> {
    fn new(cat: &'a Catalog) -> Self {
        QB {
            cat,
            plan: QueryPlan::new(),
        }
    }

    fn a(&self, name: &str) -> AttrId {
        self.cat.attr(name).expect("known TPC-H attribute")
    }

    fn col(&self, name: &str) -> Expr {
        Expr::Col(self.a(name))
    }

    fn base(&mut self, table: &str, cols: &[&str]) -> NodeId {
        let rel = self.cat.relation(table).expect("known TPC-H table").rel;
        let attrs = cols.iter().map(|c| self.a(c)).collect();
        self.plan.add_base(rel, attrs)
    }

    fn select(&mut self, child: NodeId, pred: Expr) -> NodeId {
        self.plan.add(Operator::Select { pred }, vec![child])
    }

    fn join_on(&mut self, l: NodeId, r: NodeId, on: &[(&str, &str)]) -> NodeId {
        self.join_full(l, r, JoinKind::Inner, on, None)
    }

    fn join_full(
        &mut self,
        l: NodeId,
        r: NodeId,
        kind: JoinKind,
        on: &[(&str, &str)],
        residual: Option<Expr>,
    ) -> NodeId {
        let conds = on
            .iter()
            .map(|(a, b)| (self.a(a), CmpOp::Eq, self.a(b)))
            .collect();
        self.plan.add(
            Operator::Join {
                kind,
                on: conds,
                residual,
            },
            vec![l, r],
        )
    }

    fn product(&mut self, l: NodeId, r: NodeId) -> NodeId {
        self.plan.add(Operator::Product, vec![l, r])
    }

    fn group(&mut self, child: NodeId, keys: &[&str], aggs: Vec<AggExpr>) -> NodeId {
        let keys = keys.iter().map(|k| self.a(k)).collect();
        self.plan.add(Operator::GroupBy { keys, aggs }, vec![child])
    }

    fn having(&mut self, child: NodeId, pred: Expr) -> NodeId {
        self.plan.add(Operator::Having { pred }, vec![child])
    }

    fn udf_year(&mut self, child: NodeId, date_col: &str) -> NodeId {
        let a = self.a(date_col);
        self.plan.add(
            Operator::Udf {
                name: format!("year_of_{date_col}"),
                inputs: vec![a],
                output: a,
                body: Some(Expr::Extract {
                    field: DateField::Year,
                    expr: Box::new(Expr::Col(a)),
                }),
            },
            vec![child],
        )
    }

    fn sort(&mut self, child: NodeId, keys: Vec<(Expr, bool)>) -> NodeId {
        self.plan.add(Operator::Sort { keys }, vec![child])
    }

    fn limit(&mut self, child: NodeId, n: u64) -> NodeId {
        self.plan.add(Operator::Limit { n }, vec![child])
    }

    fn project(&mut self, child: NodeId, cols: &[&str]) -> NodeId {
        let attrs = cols.iter().map(|c| self.a(c)).collect();
        self.plan.add(Operator::Project { attrs }, vec![child])
    }

    // Aggregate helpers (outputs named after an input attribute).

    fn sum_col(&self, col: &str) -> AggExpr {
        AggExpr::over_col(AggFunc::Sum, self.a(col))
    }

    fn avg_col(&self, col: &str) -> AggExpr {
        AggExpr::over_col(AggFunc::Avg, self.a(col))
    }

    fn min_col(&self, col: &str) -> AggExpr {
        AggExpr::over_col(AggFunc::Min, self.a(col))
    }

    fn max_col(&self, col: &str) -> AggExpr {
        AggExpr::over_col(AggFunc::Max, self.a(col))
    }

    fn sum_expr(&self, e: Expr, out: &str) -> AggExpr {
        AggExpr {
            func: AggFunc::Sum,
            input: e,
            output: self.a(out),
        }
    }

    fn count_star(&self, out: &str) -> AggExpr {
        AggExpr::count_star(self.a(out))
    }

    fn count_col(&self, col: &str) -> AggExpr {
        AggExpr {
            func: AggFunc::Count,
            input: self.col(col),
            output: self.a(col),
        }
    }

    fn count_distinct(&self, col: &str) -> AggExpr {
        AggExpr {
            func: AggFunc::CountDistinct,
            input: self.col(col),
            output: self.a(col),
        }
    }

    /// `col · (1 − discount)` — the ubiquitous revenue expression.
    fn revenue(&self, price: &str, discount: &str) -> Expr {
        Expr::arith(
            self.col(price),
            ArithOp::Mul,
            Expr::arith(Expr::Lit(Value::Num(1.0)), ArithOp::Sub, self.col(discount)),
        )
    }
}

fn lit_str(s: &str) -> Expr {
    Expr::Lit(Value::str(s))
}

fn lit_num(n: f64) -> Expr {
    Expr::Lit(Value::Num(n))
}

fn lit_int(n: i64) -> Expr {
    Expr::Lit(Value::Int(n))
}

fn date(s: &str) -> Date {
    Date::parse(s).expect("valid date literal")
}

fn lit_date(s: &str) -> Expr {
    Expr::Lit(Value::Date(date(s)))
}

fn cmp(a: Expr, op: CmpOp, b: Expr) -> Expr {
    Expr::cmp(a, op, b)
}

fn between(e: Expr, lo: Expr, hi: Expr) -> Expr {
    Expr::Between {
        expr: Box::new(e),
        lo: Box::new(lo),
        hi: Box::new(hi),
        negated: false,
    }
}

fn in_list(e: Expr, vals: Vec<Value>) -> Expr {
    Expr::InList {
        expr: Box::new(e),
        list: vals,
        negated: false,
    }
}

fn like(e: Expr, pat: &str) -> Expr {
    Expr::Like {
        expr: Box::new(e),
        pattern: pat.to_string(),
        negated: false,
    }
}

fn not_like(e: Expr, pat: &str) -> Expr {
    Expr::Like {
        expr: Box::new(e),
        pattern: pat.to_string(),
        negated: true,
    }
}

// ---------------------------------------------------------------------------
// The queries
// ---------------------------------------------------------------------------

/// Q1 — pricing summary report.
fn q1(b: &mut QB) {
    let li = b.base(
        "lineitem",
        &[
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_shipdate",
        ],
    );
    let sel = b.select(
        li,
        cmp(
            b.col("l_shipdate"),
            CmpOp::Le,
            lit_date("1998-12-01"), // date '1998-12-01' - interval '90' day folded
        ),
    );
    let disc_price = b.revenue("l_extendedprice", "l_discount");
    let charge = Expr::arith(
        disc_price.clone(),
        ArithOp::Mul,
        Expr::arith(lit_num(1.0), ArithOp::Add, b.col("l_tax")),
    );
    let aggs = vec![
        b.sum_col("l_quantity"),
        b.sum_col("l_extendedprice"),
        b.sum_expr(disc_price, "l_extendedprice"),
        b.sum_expr(charge, "l_extendedprice"),
        b.avg_col("l_quantity"),
        b.avg_col("l_extendedprice"),
        b.avg_col("l_discount"),
        b.count_star("l_returnflag"),
    ];
    let g = b.group(sel, &["l_returnflag", "l_linestatus"], aggs);
    b.sort(
        g,
        vec![(b.col("l_returnflag"), true), (b.col("l_linestatus"), true)],
    );
}

/// Q2 — minimum-cost supplier (correlated MIN subquery → aggregate
/// branch over alias relations, joined back on part key and cost).
fn q2(b: &mut QB) {
    // Main branch: EUROPE suppliers of size-15 %BRASS parts.
    let region = b.base("region", &["r_regionkey", "r_name"]);
    let region = b.select(region, cmp(b.col("r_name"), CmpOp::Eq, lit_str("EUROPE")));
    let nation = b.base("nation", &["n_nationkey", "n_regionkey", "n_name"]);
    let rn = b.join_on(region, nation, &[("r_regionkey", "n_regionkey")]);
    let supplier = b.base(
        "supplier",
        &[
            "s_suppkey",
            "s_nationkey",
            "s_acctbal",
            "s_name",
            "s_address",
            "s_phone",
            "s_comment",
        ],
    );
    let rns = b.join_on(rn, supplier, &[("n_nationkey", "s_nationkey")]);
    let partsupp = b.base("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"]);
    let rnsp = b.join_on(rns, partsupp, &[("s_suppkey", "ps_suppkey")]);
    let part = b.base("part", &["p_partkey", "p_mfgr", "p_size", "p_type"]);
    let part = b.select(
        part,
        cmp(b.col("p_size"), CmpOp::Eq, lit_int(15)).and(like(b.col("p_type"), "%BRASS")),
    );
    let main = b.join_on(rnsp, part, &[("ps_partkey", "p_partkey")]);

    // MIN-cost branch (second scan via alias relations).
    let region2 = b.base("region2", &["r2_regionkey", "r2_name"]);
    let region2 = b.select(region2, cmp(b.col("r2_name"), CmpOp::Eq, lit_str("EUROPE")));
    let nation3 = b.base("nation3", &["n3_nationkey", "n3_regionkey"]);
    let rn2 = b.join_on(region2, nation3, &[("r2_regionkey", "n3_regionkey")]);
    let supplier2 = b.base("supplier2", &["s2_suppkey", "s2_nationkey"]);
    let rns2 = b.join_on(rn2, supplier2, &[("n3_nationkey", "s2_nationkey")]);
    let partsupp2 = b.base(
        "partsupp2",
        &["ps2_partkey", "ps2_suppkey", "ps2_supplycost"],
    );
    let rnsp2 = b.join_on(rns2, partsupp2, &[("s2_suppkey", "ps2_suppkey")]);
    let min_cost = b.group(rnsp2, &["ps2_partkey"], vec![b.min_col("ps2_supplycost")]);

    let joined = b.join_full(
        main,
        min_cost,
        JoinKind::Inner,
        &[
            ("p_partkey", "ps2_partkey"),
            ("ps_supplycost", "ps2_supplycost"),
        ],
        None,
    );
    let proj = b.project(
        joined,
        &[
            "s_acctbal",
            "s_name",
            "n_name",
            "p_partkey",
            "p_mfgr",
            "s_address",
            "s_phone",
            "s_comment",
        ],
    );
    let sorted = b.sort(
        proj,
        vec![
            (b.col("s_acctbal"), false),
            (b.col("n_name"), true),
            (b.col("s_name"), true),
            (b.col("p_partkey"), true),
        ],
    );
    b.limit(sorted, 100);
}

/// Q3 — shipping priority.
fn q3(b: &mut QB) {
    let customer = b.base("customer", &["c_custkey", "c_mktsegment"]);
    let customer = b.select(
        customer,
        cmp(b.col("c_mktsegment"), CmpOp::Eq, lit_str("BUILDING")),
    );
    let orders = b.base(
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
    );
    let orders = b.select(
        orders,
        cmp(b.col("o_orderdate"), CmpOp::Lt, lit_date("1995-03-15")),
    );
    let co = b.join_on(customer, orders, &[("c_custkey", "o_custkey")]);
    let li = b.base(
        "lineitem",
        &["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"],
    );
    let li = b.select(
        li,
        cmp(b.col("l_shipdate"), CmpOp::Gt, lit_date("1995-03-15")),
    );
    let col = b.join_on(co, li, &[("o_orderkey", "l_orderkey")]);
    let rev = b.revenue("l_extendedprice", "l_discount");
    let g = b.group(
        col,
        &["o_orderkey", "o_orderdate", "o_shippriority"],
        vec![b.sum_expr(rev, "l_extendedprice")],
    );
    let sorted = b.sort(
        g,
        vec![(Expr::AggRef(0), false), (b.col("o_orderdate"), true)],
    );
    b.limit(sorted, 10);
}

/// Q4 — order priority checking (EXISTS → semi-join).
fn q4(b: &mut QB) {
    let orders = b.base("orders", &["o_orderkey", "o_orderdate", "o_orderpriority"]);
    let orders = b.select(
        orders,
        cmp(b.col("o_orderdate"), CmpOp::Ge, lit_date("1993-07-01")).and(cmp(
            b.col("o_orderdate"),
            CmpOp::Lt,
            lit_date("1993-10-01"),
        )),
    );
    let li = b.base("lineitem", &["l_orderkey", "l_commitdate", "l_receiptdate"]);
    let li = b.select(
        li,
        cmp(b.col("l_commitdate"), CmpOp::Lt, b.col("l_receiptdate")),
    );
    let semi = b.join_full(
        orders,
        li,
        JoinKind::Semi,
        &[("o_orderkey", "l_orderkey")],
        None,
    );
    let g = b.group(
        semi,
        &["o_orderpriority"],
        vec![b.count_star("o_orderpriority")],
    );
    b.sort(g, vec![(b.col("o_orderpriority"), true)]);
}

/// Q5 — local supplier volume.
fn q5(b: &mut QB) {
    let region = b.base("region", &["r_regionkey", "r_name"]);
    let region = b.select(region, cmp(b.col("r_name"), CmpOp::Eq, lit_str("ASIA")));
    let nation = b.base("nation", &["n_nationkey", "n_regionkey", "n_name"]);
    let rn = b.join_on(region, nation, &[("r_regionkey", "n_regionkey")]);
    let customer = b.base("customer", &["c_custkey", "c_nationkey"]);
    let rnc = b.join_on(rn, customer, &[("n_nationkey", "c_nationkey")]);
    let orders = b.base("orders", &["o_orderkey", "o_custkey", "o_orderdate"]);
    let orders = b.select(
        orders,
        cmp(b.col("o_orderdate"), CmpOp::Ge, lit_date("1994-01-01")).and(cmp(
            b.col("o_orderdate"),
            CmpOp::Lt,
            lit_date("1995-01-01"),
        )),
    );
    let rnco = b.join_on(rnc, orders, &[("c_custkey", "o_custkey")]);
    let li = b.base(
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    );
    let rncol = b.join_on(rnco, li, &[("o_orderkey", "l_orderkey")]);
    let supplier = b.base("supplier", &["s_suppkey", "s_nationkey"]);
    // The double condition l_suppkey = s_suppkey AND c_nationkey =
    // s_nationkey ensures the supplier is in the customer's nation.
    let all = b.join_full(
        supplier,
        rncol,
        JoinKind::Inner,
        &[("s_suppkey", "l_suppkey"), ("s_nationkey", "c_nationkey")],
        None,
    );
    let rev = b.revenue("l_extendedprice", "l_discount");
    let g = b.group(all, &["n_name"], vec![b.sum_expr(rev, "l_extendedprice")]);
    b.sort(g, vec![(Expr::AggRef(0), false)]);
}

/// Q6 — forecasting revenue change.
fn q6(b: &mut QB) {
    let li = b.base(
        "lineitem",
        &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
    );
    let sel = b.select(
        li,
        cmp(b.col("l_shipdate"), CmpOp::Ge, lit_date("1994-01-01"))
            .and(cmp(b.col("l_shipdate"), CmpOp::Lt, lit_date("1995-01-01")))
            .and(between(b.col("l_discount"), lit_num(0.05), lit_num(0.07)))
            .and(cmp(b.col("l_quantity"), CmpOp::Lt, lit_num(24.0))),
    );
    let rev = Expr::arith(b.col("l_extendedprice"), ArithOp::Mul, b.col("l_discount"));
    b.group(sel, &[], vec![b.sum_expr(rev, "l_extendedprice")]);
}

/// Q7 — volume shipping between two nations (two nation scans).
fn q7(b: &mut QB) {
    let supplier = b.base("supplier", &["s_suppkey", "s_nationkey"]);
    let li = b.base(
        "lineitem",
        &[
            "l_orderkey",
            "l_suppkey",
            "l_shipdate",
            "l_extendedprice",
            "l_discount",
        ],
    );
    let li = b.select(
        li,
        between(
            b.col("l_shipdate"),
            lit_date("1995-01-01"),
            lit_date("1996-12-31"),
        ),
    );
    let sl = b.join_on(supplier, li, &[("s_suppkey", "l_suppkey")]);
    let orders = b.base("orders", &["o_orderkey", "o_custkey"]);
    let slo = b.join_on(sl, orders, &[("l_orderkey", "o_orderkey")]);
    let customer = b.base("customer", &["c_custkey", "c_nationkey"]);
    let sloc = b.join_on(slo, customer, &[("o_custkey", "c_custkey")]);
    let n1 = b.base("nation", &["n_nationkey", "n_name"]);
    let j1 = b.join_on(sloc, n1, &[("s_nationkey", "n_nationkey")]);
    let n2 = b.base("nation2", &["n2_nationkey", "n2_name"]);
    let j2 = b.join_on(j1, n2, &[("c_nationkey", "n2_nationkey")]);
    let pair = Expr::Or(vec![
        cmp(b.col("n_name"), CmpOp::Eq, lit_str("FRANCE")).and(cmp(
            b.col("n2_name"),
            CmpOp::Eq,
            lit_str("GERMANY"),
        )),
        cmp(b.col("n_name"), CmpOp::Eq, lit_str("GERMANY")).and(cmp(
            b.col("n2_name"),
            CmpOp::Eq,
            lit_str("FRANCE"),
        )),
    ]);
    let filtered = b.select(j2, pair);
    let year = b.udf_year(filtered, "l_shipdate");
    let rev = b.revenue("l_extendedprice", "l_discount");
    let g = b.group(
        year,
        &["n_name", "n2_name", "l_shipdate"],
        vec![b.sum_expr(rev, "l_extendedprice")],
    );
    b.sort(
        g,
        vec![
            (b.col("n_name"), true),
            (b.col("n2_name"), true),
            (b.col("l_shipdate"), true),
        ],
    );
}

/// Q8 — national market share (two nation scans, CASE aggregate).
fn q8(b: &mut QB) {
    let part = b.base("part", &["p_partkey", "p_type"]);
    let part = b.select(
        part,
        cmp(
            b.col("p_type"),
            CmpOp::Eq,
            lit_str("ECONOMY ANODIZED STEEL"),
        ),
    );
    let li = b.base(
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
        ],
    );
    let pl = b.join_on(part, li, &[("p_partkey", "l_partkey")]);
    let supplier = b.base("supplier", &["s_suppkey", "s_nationkey"]);
    let pls = b.join_on(pl, supplier, &[("l_suppkey", "s_suppkey")]);
    let orders = b.base("orders", &["o_orderkey", "o_custkey", "o_orderdate"]);
    let orders = b.select(
        orders,
        between(
            b.col("o_orderdate"),
            lit_date("1995-01-01"),
            lit_date("1996-12-31"),
        ),
    );
    let plso = b.join_on(pls, orders, &[("l_orderkey", "o_orderkey")]);
    let customer = b.base("customer", &["c_custkey", "c_nationkey"]);
    let plsoc = b.join_on(plso, customer, &[("o_custkey", "c_custkey")]);
    let n1 = b.base("nation", &["n_nationkey", "n_regionkey"]);
    let j1 = b.join_on(plsoc, n1, &[("c_nationkey", "n_nationkey")]);
    let region = b.base("region", &["r_regionkey", "r_name"]);
    let region = b.select(region, cmp(b.col("r_name"), CmpOp::Eq, lit_str("AMERICA")));
    let j2 = b.join_on(j1, region, &[("n_regionkey", "r_regionkey")]);
    let n2 = b.base("nation2", &["n2_nationkey", "n2_name"]);
    let j3 = b.join_on(j2, n2, &[("s_nationkey", "n2_nationkey")]);
    let year = b.udf_year(j3, "o_orderdate");
    let volume = b.revenue("l_extendedprice", "l_discount");
    let brazil_volume = Expr::Case {
        branches: vec![(
            cmp(b.col("n2_name"), CmpOp::Eq, lit_str("BRAZIL")),
            volume.clone(),
        )],
        else_: Some(Box::new(lit_num(0.0))),
    };
    let g = b.group(
        year,
        &["o_orderdate"],
        vec![
            b.sum_expr(brazil_volume, "l_extendedprice"),
            b.sum_expr(volume, "l_extendedprice"),
        ],
    );
    b.sort(g, vec![(b.col("o_orderdate"), true)]);
}

/// Q9 — product type profit measure.
fn q9(b: &mut QB) {
    let part = b.base("part", &["p_partkey", "p_name"]);
    let part = b.select(part, like(b.col("p_name"), "%green%"));
    let li = b.base(
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
        ],
    );
    let pl = b.join_on(part, li, &[("p_partkey", "l_partkey")]);
    let supplier = b.base("supplier", &["s_suppkey", "s_nationkey"]);
    let pls = b.join_on(pl, supplier, &[("l_suppkey", "s_suppkey")]);
    let partsupp = b.base("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"]);
    let plsp = b.join_full(
        pls,
        partsupp,
        JoinKind::Inner,
        &[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")],
        None,
    );
    let orders = b.base("orders", &["o_orderkey", "o_orderdate"]);
    let plspo = b.join_on(plsp, orders, &[("l_orderkey", "o_orderkey")]);
    let nation = b.base("nation", &["n_nationkey", "n_name"]);
    let all = b.join_on(plspo, nation, &[("s_nationkey", "n_nationkey")]);
    let year = b.udf_year(all, "o_orderdate");
    let amount = Expr::arith(
        b.revenue("l_extendedprice", "l_discount"),
        ArithOp::Sub,
        Expr::arith(b.col("ps_supplycost"), ArithOp::Mul, b.col("l_quantity")),
    );
    let g = b.group(
        year,
        &["n_name", "o_orderdate"],
        vec![b.sum_expr(amount, "l_extendedprice")],
    );
    b.sort(
        g,
        vec![(b.col("n_name"), true), (b.col("o_orderdate"), false)],
    );
}

/// Q10 — returned item reporting.
fn q10(b: &mut QB) {
    let customer = b.base(
        "customer",
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_nationkey",
            "c_address",
            "c_comment",
        ],
    );
    let orders = b.base("orders", &["o_orderkey", "o_custkey", "o_orderdate"]);
    let orders = b.select(
        orders,
        cmp(b.col("o_orderdate"), CmpOp::Ge, lit_date("1993-10-01")).and(cmp(
            b.col("o_orderdate"),
            CmpOp::Lt,
            lit_date("1994-01-01"),
        )),
    );
    let co = b.join_on(customer, orders, &[("c_custkey", "o_custkey")]);
    let li = b.base(
        "lineitem",
        &[
            "l_orderkey",
            "l_returnflag",
            "l_extendedprice",
            "l_discount",
        ],
    );
    let li = b.select(li, cmp(b.col("l_returnflag"), CmpOp::Eq, lit_str("R")));
    let col = b.join_on(co, li, &[("o_orderkey", "l_orderkey")]);
    let nation = b.base("nation", &["n_nationkey", "n_name"]);
    let all = b.join_on(col, nation, &[("c_nationkey", "n_nationkey")]);
    let rev = b.revenue("l_extendedprice", "l_discount");
    let g = b.group(
        all,
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "n_name",
            "c_address",
            "c_comment",
        ],
        vec![b.sum_expr(rev, "l_extendedprice")],
    );
    let sorted = b.sort(g, vec![(Expr::AggRef(0), false)]);
    b.limit(sorted, 20);
}

/// Q11 — important stock identification (HAVING against a global
/// scalar aggregate → product with a scalar branch).
fn q11(b: &mut QB) {
    let partsupp = b.base(
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
    );
    let supplier = b.base("supplier", &["s_suppkey", "s_nationkey"]);
    let ps = b.join_on(partsupp, supplier, &[("ps_suppkey", "s_suppkey")]);
    let nation = b.base("nation", &["n_nationkey", "n_name"]);
    let nation = b.select(nation, cmp(b.col("n_name"), CmpOp::Eq, lit_str("GERMANY")));
    let psn = b.join_on(ps, nation, &[("s_nationkey", "n_nationkey")]);
    let value = Expr::arith(b.col("ps_supplycost"), ArithOp::Mul, b.col("ps_availqty"));
    let per_part = b.group(
        psn,
        &["ps_partkey"],
        vec![b.sum_expr(value, "ps_supplycost")],
    );

    // Scalar branch: the same sum over all German partsupps.
    let partsupp2 = b.base(
        "partsupp2",
        &["ps2_suppkey", "ps2_availqty", "ps2_supplycost"],
    );
    let supplier2 = b.base("supplier2", &["s2_suppkey", "s2_nationkey"]);
    let ps2 = b.join_on(partsupp2, supplier2, &[("ps2_suppkey", "s2_suppkey")]);
    let nation2 = b.base("nation2", &["n2_nationkey", "n2_name"]);
    let nation2 = b.select(
        nation2,
        cmp(b.col("n2_name"), CmpOp::Eq, lit_str("GERMANY")),
    );
    let ps2n = b.join_on(ps2, nation2, &[("s2_nationkey", "n2_nationkey")]);
    let value2 = Expr::arith(b.col("ps2_supplycost"), ArithOp::Mul, b.col("ps2_availqty"));
    let total = b.group(ps2n, &[], vec![b.sum_expr(value2, "ps2_supplycost")]);

    let combined = b.product(per_part, total);
    let filtered = b.select(
        combined,
        cmp(
            b.col("ps_supplycost"),
            CmpOp::Gt,
            Expr::arith(b.col("ps2_supplycost"), ArithOp::Mul, lit_num(0.0001)),
        ),
    );
    let proj = b.project(filtered, &["ps_partkey", "ps_supplycost"]);
    b.sort(proj, vec![(b.col("ps_supplycost"), false)]);
}

/// Q12 — shipping modes and order priority.
fn q12(b: &mut QB) {
    let orders = b.base("orders", &["o_orderkey", "o_orderpriority"]);
    let li = b.base(
        "lineitem",
        &[
            "l_orderkey",
            "l_shipmode",
            "l_commitdate",
            "l_receiptdate",
            "l_shipdate",
        ],
    );
    let li = b.select(
        li,
        in_list(
            b.col("l_shipmode"),
            vec![Value::str("MAIL"), Value::str("SHIP")],
        )
        .and(cmp(
            b.col("l_commitdate"),
            CmpOp::Lt,
            b.col("l_receiptdate"),
        ))
        .and(cmp(b.col("l_shipdate"), CmpOp::Lt, b.col("l_commitdate")))
        .and(cmp(
            b.col("l_receiptdate"),
            CmpOp::Ge,
            lit_date("1994-01-01"),
        ))
        .and(cmp(
            b.col("l_receiptdate"),
            CmpOp::Lt,
            lit_date("1995-01-01"),
        )),
    );
    let ol = b.join_on(orders, li, &[("o_orderkey", "l_orderkey")]);
    let high = Expr::Case {
        branches: vec![(
            in_list(
                b.col("o_orderpriority"),
                vec![Value::str("1-URGENT"), Value::str("2-HIGH")],
            ),
            lit_int(1),
        )],
        else_: Some(Box::new(lit_int(0))),
    };
    let low = Expr::Case {
        branches: vec![(
            in_list(
                b.col("o_orderpriority"),
                vec![Value::str("1-URGENT"), Value::str("2-HIGH")],
            ),
            lit_int(0),
        )],
        else_: Some(Box::new(lit_int(1))),
    };
    let g = b.group(
        ol,
        &["l_shipmode"],
        vec![
            b.sum_expr(high, "o_orderpriority"),
            b.sum_expr(low, "o_orderpriority"),
        ],
    );
    b.sort(g, vec![(b.col("l_shipmode"), true)]);
}

/// Q13 — customer distribution (left outer join + double aggregation).
fn q13(b: &mut QB) {
    let customer = b.base("customer", &["c_custkey"]);
    let orders = b.base("orders", &["o_orderkey", "o_custkey", "o_comment"]);
    let orders = b.select(orders, not_like(b.col("o_comment"), "%special%requests%"));
    let lo = b.join_full(
        customer,
        orders,
        JoinKind::LeftOuter,
        &[("c_custkey", "o_custkey")],
        None,
    );
    let per_customer = b.group(lo, &["c_custkey"], vec![b.count_col("o_orderkey")]);
    // Second aggregation: distribution of counts.
    let dist = b.group(
        per_customer,
        &["o_orderkey"],
        vec![b.count_star("o_orderkey")],
    );
    b.sort(
        dist,
        vec![(Expr::AggRef(0), false), (b.col("o_orderkey"), false)],
    );
}

/// Q14 — promotion effect.
fn q14(b: &mut QB) {
    let li = b.base(
        "lineitem",
        &["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"],
    );
    let li = b.select(
        li,
        cmp(b.col("l_shipdate"), CmpOp::Ge, lit_date("1995-09-01")).and(cmp(
            b.col("l_shipdate"),
            CmpOp::Lt,
            lit_date("1995-10-01"),
        )),
    );
    let part = b.base("part", &["p_partkey", "p_type"]);
    let lp = b.join_on(li, part, &[("l_partkey", "p_partkey")]);
    let volume = b.revenue("l_extendedprice", "l_discount");
    let promo = Expr::Case {
        branches: vec![(like(b.col("p_type"), "PROMO%"), volume.clone())],
        else_: Some(Box::new(lit_num(0.0))),
    };
    b.group(
        lp,
        &[],
        vec![
            b.sum_expr(promo, "l_extendedprice"),
            b.sum_expr(volume, "l_extendedprice"),
        ],
    );
}

/// Q15 — top supplier (revenue view computed twice; MAX branch).
fn q15(b: &mut QB) {
    // revenue view over the main lineitem scan.
    let li = b.base(
        "lineitem",
        &["l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"],
    );
    let li = b.select(
        li,
        cmp(b.col("l_shipdate"), CmpOp::Ge, lit_date("1996-01-01")).and(cmp(
            b.col("l_shipdate"),
            CmpOp::Lt,
            lit_date("1996-04-01"),
        )),
    );
    let rev = b.revenue("l_extendedprice", "l_discount");
    let view = b.group(li, &["l_suppkey"], vec![b.sum_expr(rev, "l_extendedprice")]);

    // MAX branch over a second scan.
    let li2 = b.base(
        "lineitem2",
        &[
            "l2_suppkey",
            "l2_shipdate",
            "l2_extendedprice",
            "l2_discount",
        ],
    );
    let li2 = b.select(
        li2,
        cmp(b.col("l2_shipdate"), CmpOp::Ge, lit_date("1996-01-01")).and(cmp(
            b.col("l2_shipdate"),
            CmpOp::Lt,
            lit_date("1996-04-01"),
        )),
    );
    let rev2 = b.revenue("l2_extendedprice", "l2_discount");
    let view2 = b.group(
        li2,
        &["l2_suppkey"],
        vec![b.sum_expr(rev2, "l2_extendedprice")],
    );
    let max_rev = b.group(view2, &[], vec![b.max_col("l2_extendedprice")]);

    let combined = b.product(view, max_rev);
    let filtered = b.select(
        combined,
        cmp(
            b.col("l_extendedprice"),
            CmpOp::Eq,
            b.col("l2_extendedprice"),
        ),
    );
    let supplier = b.base("supplier", &["s_suppkey", "s_name", "s_address", "s_phone"]);
    let joined = b.join_on(supplier, filtered, &[("s_suppkey", "l_suppkey")]);
    let proj = b.project(
        joined,
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_phone",
            "l_extendedprice",
        ],
    );
    b.sort(proj, vec![(b.col("s_suppkey"), true)]);
}

/// Q16 — parts/supplier relationship (NOT IN → anti-join).
fn q16(b: &mut QB) {
    let partsupp = b.base("partsupp", &["ps_partkey", "ps_suppkey"]);
    let part = b.base("part", &["p_partkey", "p_brand", "p_type", "p_size"]);
    let part = b.select(
        part,
        Expr::Not(Box::new(cmp(
            b.col("p_brand"),
            CmpOp::Eq,
            lit_str("Brand#45"),
        )))
        .and(not_like(b.col("p_type"), "MEDIUM POLISHED%"))
        .and(in_list(
            b.col("p_size"),
            vec![
                Value::Int(49),
                Value::Int(14),
                Value::Int(23),
                Value::Int(45),
                Value::Int(19),
                Value::Int(3),
                Value::Int(36),
                Value::Int(9),
            ],
        )),
    );
    let psp = b.join_on(partsupp, part, &[("ps_partkey", "p_partkey")]);
    let bad_suppliers = b.base("supplier", &["s_suppkey", "s_comment"]);
    let bad_suppliers = b.select(
        bad_suppliers,
        like(b.col("s_comment"), "%Customer%Complaints%"),
    );
    let anti = b.join_full(
        psp,
        bad_suppliers,
        JoinKind::Anti,
        &[("ps_suppkey", "s_suppkey")],
        None,
    );
    let g = b.group(
        anti,
        &["p_brand", "p_type", "p_size"],
        vec![b.count_distinct("ps_suppkey")],
    );
    b.sort(
        g,
        vec![
            (Expr::AggRef(0), false),
            (b.col("p_brand"), true),
            (b.col("p_type"), true),
            (b.col("p_size"), true),
        ],
    );
}

/// Q17 — small-quantity-order revenue (correlated AVG → aggregate
/// branch over a second lineitem scan).
fn q17(b: &mut QB) {
    let li = b.base("lineitem", &["l_partkey", "l_quantity", "l_extendedprice"]);
    let part = b.base("part", &["p_partkey", "p_brand", "p_container"]);
    let part = b.select(
        part,
        cmp(b.col("p_brand"), CmpOp::Eq, lit_str("Brand#23")).and(cmp(
            b.col("p_container"),
            CmpOp::Eq,
            lit_str("MED BOX"),
        )),
    );
    let lp = b.join_on(li, part, &[("l_partkey", "p_partkey")]);
    let li2 = b.base("lineitem2", &["l2_partkey", "l2_quantity"]);
    let avg_qty = b.group(li2, &["l2_partkey"], vec![b.avg_col("l2_quantity")]);
    let joined = b.join_full(
        lp,
        avg_qty,
        JoinKind::Inner,
        &[("p_partkey", "l2_partkey")],
        Some(cmp(
            b.col("l_quantity"),
            CmpOp::Lt,
            Expr::arith(lit_num(0.2), ArithOp::Mul, b.col("l2_quantity")),
        )),
    );
    b.group(joined, &[], vec![b.sum_col("l_extendedprice")]);
}

/// Q18 — large-volume customers (IN over a grouped subquery →
/// semi-join against a HAVING branch).
fn q18(b: &mut QB) {
    let li2 = b.base("lineitem2", &["l2_orderkey", "l2_quantity"]);
    let big = b.group(li2, &["l2_orderkey"], vec![b.sum_col("l2_quantity")]);
    let big = b.having(big, cmp(Expr::AggRef(0), CmpOp::Gt, lit_num(300.0)));
    let customer = b.base("customer", &["c_custkey", "c_name"]);
    let orders = b.base(
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"],
    );
    let co = b.join_on(customer, orders, &[("c_custkey", "o_custkey")]);
    let co = b.join_full(
        co,
        big,
        JoinKind::Semi,
        &[("o_orderkey", "l2_orderkey")],
        None,
    );
    let li = b.base("lineitem", &["l_orderkey", "l_quantity"]);
    let col = b.join_on(co, li, &[("o_orderkey", "l_orderkey")]);
    let g = b.group(
        col,
        &[
            "c_name",
            "c_custkey",
            "o_orderkey",
            "o_orderdate",
            "o_totalprice",
        ],
        vec![b.sum_col("l_quantity")],
    );
    let sorted = b.sort(
        g,
        vec![(b.col("o_totalprice"), false), (b.col("o_orderdate"), true)],
    );
    b.limit(sorted, 100);
}

/// Q19 — discounted revenue (disjunction of brand/container/quantity
/// combinations as a join residual).
fn q19(b: &mut QB) {
    let li = b.base(
        "lineitem",
        &[
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipmode",
            "l_shipinstruct",
        ],
    );
    let li = b.select(
        li,
        in_list(
            b.col("l_shipmode"),
            vec![Value::str("AIR"), Value::str("REG AIR")],
        )
        .and(cmp(
            b.col("l_shipinstruct"),
            CmpOp::Eq,
            lit_str("DELIVER IN PERSON"),
        )),
    );
    let part = b.base("part", &["p_partkey", "p_brand", "p_container", "p_size"]);
    let combo = |b: &QB, brand: &str, containers: [&str; 4], qlo: f64, qhi: f64, size_hi: i64| {
        cmp(b.col("p_brand"), CmpOp::Eq, lit_str(brand))
            .and(in_list(
                b.col("p_container"),
                containers.iter().map(|c| Value::str(c)).collect(),
            ))
            .and(between(b.col("l_quantity"), lit_num(qlo), lit_num(qhi)))
            .and(between(
                b.col("p_size"),
                lit_num(1.0),
                lit_num(size_hi as f64),
            ))
    };
    let residual = Expr::Or(vec![
        combo(
            b,
            "Brand#12",
            ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
            1.0,
            11.0,
            5,
        ),
        combo(
            b,
            "Brand#23",
            ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
            10.0,
            20.0,
            10,
        ),
        combo(
            b,
            "Brand#34",
            ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
            20.0,
            30.0,
            15,
        ),
    ]);
    let joined = b.join_full(
        li,
        part,
        JoinKind::Inner,
        &[("l_partkey", "p_partkey")],
        Some(residual),
    );
    let rev = b.revenue("l_extendedprice", "l_discount");
    b.group(joined, &[], vec![b.sum_expr(rev, "l_extendedprice")]);
}

/// Q20 — potential part promotion (nested IN/scalar → semi-join chain
/// with an aggregate branch over a second lineitem scan).
fn q20(b: &mut QB) {
    // Aggregate branch: half the shipped quantity per (part, supp).
    let li2 = b.base(
        "lineitem2",
        &["l2_partkey", "l2_suppkey", "l2_shipdate", "l2_quantity"],
    );
    let li2 = b.select(
        li2,
        cmp(b.col("l2_shipdate"), CmpOp::Ge, lit_date("1994-01-01")).and(cmp(
            b.col("l2_shipdate"),
            CmpOp::Lt,
            lit_date("1995-01-01"),
        )),
    );
    let shipped = b.group(
        li2,
        &["l2_partkey", "l2_suppkey"],
        vec![b.sum_col("l2_quantity")],
    );

    // partsupp restricted to forest% parts, with availability above
    // half the shipped quantity.
    let partsupp = b.base("partsupp", &["ps_partkey", "ps_suppkey", "ps_availqty"]);
    let part = b.base("part", &["p_partkey", "p_name"]);
    let part = b.select(part, like(b.col("p_name"), "forest%"));
    let psp = b.join_full(
        partsupp,
        part,
        JoinKind::Semi,
        &[("ps_partkey", "p_partkey")],
        None,
    );
    let with_qty = b.join_full(
        psp,
        shipped,
        JoinKind::Inner,
        &[("ps_partkey", "l2_partkey"), ("ps_suppkey", "l2_suppkey")],
        Some(cmp(
            b.col("ps_availqty"),
            CmpOp::Gt,
            Expr::arith(lit_num(0.5), ArithOp::Mul, b.col("l2_quantity")),
        )),
    );

    let supplier = b.base(
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_nationkey"],
    );
    let nation = b.base("nation", &["n_nationkey", "n_name"]);
    let nation = b.select(nation, cmp(b.col("n_name"), CmpOp::Eq, lit_str("CANADA")));
    let sn = b.join_on(supplier, nation, &[("s_nationkey", "n_nationkey")]);
    let filtered = b.join_full(
        sn,
        with_qty,
        JoinKind::Semi,
        &[("s_suppkey", "ps_suppkey")],
        None,
    );
    let proj = b.project(filtered, &["s_name", "s_address"]);
    b.sort(proj, vec![(b.col("s_name"), true)]);
}

/// Q21 — suppliers who kept orders waiting (EXISTS → semi-join,
/// NOT EXISTS → anti-join, three lineitem scans).
fn q21(b: &mut QB) {
    let supplier = b.base("supplier", &["s_suppkey", "s_name", "s_nationkey"]);
    let li = b.base(
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"],
    );
    let li = b.select(
        li,
        cmp(b.col("l_receiptdate"), CmpOp::Gt, b.col("l_commitdate")),
    );
    let sl = b.join_on(supplier, li, &[("s_suppkey", "l_suppkey")]);
    let orders = b.base("orders", &["o_orderkey", "o_orderstatus"]);
    let orders = b.select(orders, cmp(b.col("o_orderstatus"), CmpOp::Eq, lit_str("F")));
    let slo = b.join_on(sl, orders, &[("l_orderkey", "o_orderkey")]);
    let nation = b.base("nation", &["n_nationkey", "n_name"]);
    let nation = b.select(
        nation,
        cmp(b.col("n_name"), CmpOp::Eq, lit_str("SAUDI ARABIA")),
    );
    let slon = b.join_on(slo, nation, &[("s_nationkey", "n_nationkey")]);

    // EXISTS: another supplier's lineitem in the same order.
    let li2 = b.base("lineitem2", &["l2_orderkey", "l2_suppkey"]);
    let semi = b.join_full(
        slon,
        li2,
        JoinKind::Semi,
        &[("l_orderkey", "l2_orderkey")],
        Some(Expr::Not(Box::new(cmp(
            b.col("l2_suppkey"),
            CmpOp::Eq,
            b.col("l_suppkey"),
        )))),
    );

    // NOT EXISTS: no other supplier was late on the same order.
    let li3 = b.base(
        "lineitem3",
        &[
            "l3_orderkey",
            "l3_suppkey",
            "l3_receiptdate",
            "l3_commitdate",
        ],
    );
    let li3 = b.select(
        li3,
        cmp(b.col("l3_receiptdate"), CmpOp::Gt, b.col("l3_commitdate")),
    );
    let anti = b.join_full(
        semi,
        li3,
        JoinKind::Anti,
        &[("l_orderkey", "l3_orderkey")],
        Some(Expr::Not(Box::new(cmp(
            b.col("l3_suppkey"),
            CmpOp::Eq,
            b.col("l_suppkey"),
        )))),
    );
    let g = b.group(anti, &["s_name"], vec![b.count_star("s_name")]);
    let sorted = b.sort(g, vec![(Expr::AggRef(0), false), (b.col("s_name"), true)]);
    b.limit(sorted, 100);
}

/// Q22 — global sales opportunity (scalar AVG branch over a second
/// customer scan; NOT EXISTS → anti-join).
fn q22(b: &mut QB) {
    let codes = vec![
        Value::str("13"),
        Value::str("31"),
        Value::str("23"),
        Value::str("29"),
        Value::str("30"),
        Value::str("18"),
        Value::str("17"),
    ];
    let cntry = |col: Expr| Expr::Substring {
        expr: Box::new(col),
        start: 1,
        len: 2,
    };

    let customer = b.base("customer", &["c_custkey", "c_phone", "c_acctbal"]);
    let customer = b.select(customer, in_list(cntry(b.col("c_phone")), codes.clone()));

    // Scalar branch: average positive balance in those country codes.
    let customer2 = b.base("customer2", &["c2_phone", "c2_acctbal"]);
    let customer2 = b.select(
        customer2,
        cmp(b.col("c2_acctbal"), CmpOp::Gt, lit_num(0.0))
            .and(in_list(cntry(b.col("c2_phone")), codes)),
    );
    let avg_bal = b.group(customer2, &[], vec![b.avg_col("c2_acctbal")]);

    let combined = b.product(customer, avg_bal);
    let rich = b.select(
        combined,
        cmp(b.col("c_acctbal"), CmpOp::Gt, b.col("c2_acctbal")),
    );

    // NOT EXISTS orders.
    let orders = b.base("orders", &["o_custkey"]);
    let anti = b.join_full(
        rich,
        orders,
        JoinKind::Anti,
        &[("c_custkey", "o_custkey")],
        None,
    );

    // cntrycode = substring(c_phone, 1, 2) as a µ node, then group.
    let phone_attr = b.a("c_phone");
    let cntry_node = b.plan.add(
        Operator::Udf {
            name: "cntrycode".into(),
            inputs: vec![phone_attr],
            output: phone_attr,
            body: Some(cntry(Expr::Col(phone_attr))),
        },
        vec![anti],
    );
    let g = b.group(
        cntry_node,
        &["c_phone"],
        vec![b.count_star("c_phone"), b.sum_col("c_acctbal")],
    );
    b.sort(g, vec![(b.col("c_phone"), true)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::tpch_catalog;
    use crate::stats::tpch_stats;
    use mpq_algebra::stats::estimate_plan;
    use mpq_core::profile::profile_plan;

    #[test]
    fn all_22_plans_validate() {
        let cat = tpch_catalog();
        for q in 1..=QUERY_COUNT {
            let plan = query_plan(&cat, q);
            plan.validate(&cat).unwrap_or_else(|e| panic!("Q{q}: {e}"));
            assert!(plan.postorder().len() >= 3, "Q{q} suspiciously small");
        }
    }

    #[test]
    fn all_22_plans_profile_cleanly() {
        let cat = tpch_catalog();
        for q in 1..=QUERY_COUNT {
            let plan = query_plan(&cat, q);
            let profiles = profile_plan(&plan);
            let root = &profiles[plan.root().index()];
            assert!(!root.footprint().is_empty(), "Q{q} root profile is empty");
        }
    }

    #[test]
    fn all_22_plans_estimate_cleanly() {
        let cat = tpch_catalog();
        let stats = tpch_stats(&cat, 1.0);
        for q in 1..=QUERY_COUNT {
            let plan = query_plan(&cat, q);
            let est = estimate_plan(&plan, &cat, &stats);
            for id in plan.postorder() {
                let rows = est[id.index()].rows;
                assert!(
                    rows.is_finite() && rows >= 1.0,
                    "Q{q} node {id}: bad estimate {rows}"
                );
            }
        }
    }

    #[test]
    fn q6_is_single_table() {
        let cat = tpch_catalog();
        let plan = query_plan(&cat, 6);
        let joins = plan
            .postorder()
            .into_iter()
            .filter(|&id| matches!(plan.node(id).op, Operator::Join { .. } | Operator::Product))
            .count();
        assert_eq!(joins, 0);
    }

    #[test]
    fn multi_scan_queries_use_aliases() {
        let cat = tpch_catalog();
        for (q, alias) in [(2, "ps2_partkey"), (7, "n2_name"), (21, "l3_orderkey")] {
            let plan = query_plan(&cat, q);
            let a = cat.attr(alias).unwrap();
            let uses = plan.postorder().into_iter().any(|id| {
                matches!(&plan.node(id).op, Operator::Base { attrs, .. } if attrs.contains(&a))
            });
            assert!(uses, "Q{q} must scan the alias providing {alias}");
        }
    }

    #[test]
    fn semi_anti_shapes() {
        let cat = tpch_catalog();
        let kinds = |q: usize| -> Vec<JoinKind> {
            let plan = query_plan(&cat, q);
            plan.postorder()
                .into_iter()
                .filter_map(|id| match &plan.node(id).op {
                    Operator::Join { kind, .. } => Some(*kind),
                    _ => None,
                })
                .collect()
        };
        assert!(kinds(4).contains(&JoinKind::Semi), "Q4 uses a semi-join");
        assert!(kinds(13).contains(&JoinKind::LeftOuter), "Q13 outer join");
        assert!(kinds(16).contains(&JoinKind::Anti), "Q16 anti-join");
        let q21 = kinds(21);
        assert!(
            q21.contains(&JoinKind::Semi) && q21.contains(&JoinKind::Anti),
            "Q21 uses both"
        );
    }

    #[test]
    fn estimates_reflect_selectivity() {
        let cat = tpch_catalog();
        let stats = tpch_stats(&cat, 1.0);
        // Q6's selective scan must estimate far fewer rows than the
        // full lineitem table.
        let plan = query_plan(&cat, 6);
        let est = estimate_plan(&plan, &cat, &stats);
        let sel_node = plan
            .postorder()
            .into_iter()
            .find(|&id| matches!(plan.node(id).op, Operator::Select { .. }))
            .unwrap();
        let rows = est[sel_node.index()].rows;
        assert!(
            rows < 1_000_000.0,
            "Q6 selection should be selective, got {rows}"
        );
        assert!(rows > 1_000.0, "Q6 selection too selective: {rows}");
    }
}
