//! Deterministic dbgen-style data generator.
//!
//! Produces scale-factor-parameterized data with the distributions the
//! 22 queries rely on: date ranges (1992-01-01 … 1998-08-02), market
//! segments, order priorities, brands `Brand#MN`, the 150 part types
//! (`ECONOMY ANODIZED STEEL`, `PROMO BURNISHED COPPER`, …), containers
//! (`MED BOX`, …), ship modes, nation/region hierarchy, and the comment
//! patterns Q13/Q16/Q21 filter on. Cardinalities follow dbgen:
//! `supplier = 10k·SF`, `customer = 150k·SF`, `part = 200k·SF`,
//! `partsupp = 4·part`, `orders = 1.5M·SF`, `lineitem ≈ 4·orders`.
//!
//! Generation is deterministic for a given `(scale, seed)` so tests and
//! benchmarks are reproducible.

use crate::schema::{tpch_catalog, ALIASES};
use mpq_algebra::{Catalog, Date, Value};
use mpq_exec::{Database, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value pools (subset of dbgen's, preserving the values queries test).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// 25 nations with their region index (dbgen's mapping).
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_SYLL1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_SYLL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const COLORS: [&str; 10] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "green",
    "blue",
];

/// Start of the order-date range.
pub fn start_date() -> Date {
    Date::from_ymd(1992, 1, 1)
}

/// End of the order-date range (dbgen: 1998-08-02 for orders).
pub fn end_order_date() -> Date {
    Date::from_ymd(1998, 8, 2)
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    ((rng.gen_range(lo..hi)) * 100.0).round() / 100.0
}

fn phone(rng: &mut StdRng, nationkey: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        nationkey + 10,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

fn words(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| COLORS[rng.gen_range(0..COLORS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Table row counts at a scale factor.
pub fn row_counts(scale: f64) -> [(&'static str, usize); 8] {
    let sf = scale.max(0.0005);
    [
        ("region", 5),
        ("nation", 25),
        ("supplier", ((10_000.0 * sf) as usize).max(2)),
        ("part", ((200_000.0 * sf) as usize).max(4)),
        ("partsupp", ((800_000.0 * sf) as usize).max(8)),
        ("customer", ((150_000.0 * sf) as usize).max(3)),
        ("orders", ((1_500_000.0 * sf) as usize).max(10)),
        // lineitem count is derived (1–7 per order, avg ≈ 4).
        ("lineitem", 0),
    ]
}

/// Generate the full database (including alias tables, which share the
/// base tables' rows) at the given scale factor.
pub fn generate(scale: f64, seed: u64) -> (Catalog, Database) {
    let catalog = tpch_catalog();
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let counts = row_counts(scale);
    let count_of = |name: &str| -> usize {
        counts
            .iter()
            .find(|(t, _)| *t == name)
            .map(|(_, n)| *n)
            .expect("known table")
    };

    let n_supp = count_of("supplier") as i64;
    let n_part = count_of("part") as i64;
    let n_cust = count_of("customer") as i64;
    let n_orders = count_of("orders") as i64;

    // region
    let region_rows: Vec<Vec<Value>> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int(i as i64),
                Value::str(name),
                Value::str("even deposits"),
            ]
        })
        .collect();
    db.load(&catalog, "region", region_rows);

    // nation
    let nation_rows: Vec<Vec<Value>> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::Int(i as i64),
                Value::str(name),
                Value::Int(*region),
                Value::str("carefully final packages"),
            ]
        })
        .collect();
    db.load(&catalog, "nation", nation_rows);

    // supplier
    let supplier_rows: Vec<Vec<Value>> = (1..=n_supp)
        .map(|k| {
            let nation = rng.gen_range(0..25) as i64;
            let complaints = rng.gen_bool(0.005);
            let comment = if complaints {
                "slyly Customer brave Complaints haggle".to_string()
            } else {
                format!("supplier comment {}", words(&mut rng, 2))
            };
            vec![
                Value::Int(k),
                Value::str(&format!("Supplier#{k:09}")),
                Value::str(&words(&mut rng, 2)),
                Value::Int(nation),
                Value::str(&phone(&mut rng, nation)),
                Value::Num(money(&mut rng, -999.99, 9999.99)),
                Value::str(&comment),
            ]
        })
        .collect();
    db.load(&catalog, "supplier", supplier_rows);

    // part
    let part_rows: Vec<Vec<Value>> = (1..=n_part)
        .map(|k| {
            let ty = format!(
                "{} {} {}",
                TYPE_SYLL1[rng.gen_range(0..6)],
                TYPE_SYLL2[rng.gen_range(0..5)],
                TYPE_SYLL3[rng.gen_range(0..5)]
            );
            let container = format!(
                "{} {}",
                CONTAINER_SYLL1[rng.gen_range(0..5)],
                CONTAINER_SYLL2[rng.gen_range(0..8)]
            );
            let brand = format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6));
            vec![
                Value::Int(k),
                Value::str(&words(&mut rng, 3)),
                Value::str(&format!("Manufacturer#{}", rng.gen_range(1..6))),
                Value::str(&brand),
                Value::str(&ty),
                Value::Int(rng.gen_range(1..51)),
                Value::str(&container),
                Value::Num(900.0 + (k % 1000) as f64 / 10.0),
                Value::str("final part"),
            ]
        })
        .collect();
    db.load(&catalog, "part", part_rows);

    // partsupp: 4 suppliers per part.
    let mut partsupp_rows: Vec<Vec<Value>> = Vec::with_capacity((n_part * 4) as usize);
    for p in 1..=n_part {
        for i in 0..4i64 {
            let s = (p + i * (n_supp / 4 + 1)) % n_supp + 1;
            partsupp_rows.push(vec![
                Value::Int(p),
                Value::Int(s),
                Value::Int(rng.gen_range(1..10_000)),
                Value::Num(money(&mut rng, 1.0, 1000.0)),
                Value::str("quick deposits"),
            ]);
        }
    }
    db.load(&catalog, "partsupp", partsupp_rows);

    // customer
    let customer_rows: Vec<Vec<Value>> = (1..=n_cust)
        .map(|k| {
            let nation = rng.gen_range(0..25) as i64;
            vec![
                Value::Int(k),
                Value::str(&format!("Customer#{k:09}")),
                Value::str(&words(&mut rng, 2)),
                Value::Int(nation),
                Value::str(&phone(&mut rng, nation)),
                Value::Num(money(&mut rng, -999.99, 9999.99)),
                Value::str(SEGMENTS[rng.gen_range(0..5)]),
                Value::str(&format!("customer note {}", words(&mut rng, 2))),
            ]
        })
        .collect();
    db.load(&catalog, "customer", customer_rows);

    // orders + lineitem. The constant-domain string cells (flags,
    // instructions, ship modes, comments) are interned once and
    // cloned per row — an `Arc` refcount bump instead of a fresh
    // allocation, which at SF 1 saves tens of millions of allocations
    // on the two big tables.
    let v_r = Value::str("R");
    let v_a = Value::str("A");
    let v_n = Value::str("N");
    let v_f = Value::str("F");
    let v_o = Value::str("O");
    let v_p = Value::str("P");
    let v_li_comment = Value::str("lineitem comment");
    let v_instructions: Vec<Value> = INSTRUCTIONS.iter().map(|s| Value::str(s)).collect();
    let v_shipmodes: Vec<Value> = SHIPMODES.iter().map(|s| Value::str(s)).collect();
    let v_priorities: Vec<Value> = PRIORITIES.iter().map(|s| Value::str(s)).collect();
    let v_special = Value::str("blithely special packages requests");
    let v_pending = Value::str("furiously pending accounts");
    let date_span = end_order_date().0 - start_date().0;
    let attrs_of = |name: &str| -> Vec<mpq_algebra::AttrId> {
        let rel = catalog.relation(name).expect("known relation");
        rel.columns.iter().map(|c| c.attr).collect()
    };
    let mut orders_t = Table::new(attrs_of("orders"));
    let mut lineitem_t = Table::new(attrs_of("lineitem"));
    for k in 1..=n_orders {
        // dbgen uses sparse order keys; keep them dense for simplicity.
        let custkey = rng.gen_range(1..=n_cust);
        let odate = start_date().add_days(rng.gen_range(0..=date_span));
        let n_lines = rng.gen_range(1..=7);
        let special = rng.gen_bool(0.01);
        let comment = if special { &v_special } else { &v_pending };
        let mut total = 0.0;
        let mut all_f = true;
        let mut any_f = false;
        let current = Date::from_ymd(1995, 6, 17); // dbgen's CURRENTDATE
        for line in 1..=n_lines {
            let partkey = rng.gen_range(1..=n_part);
            let suppidx = rng.gen_range(0..4i64);
            let suppkey = (partkey + suppidx * (n_supp / 4 + 1)) % n_supp + 1;
            let quantity = rng.gen_range(1..=50) as f64;
            let extended = quantity * (900.0 + (partkey % 1000) as f64 / 10.0);
            let extended = (extended * 100.0).round() / 100.0;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = odate.add_days(rng.gen_range(1..=121));
            let commitdate = odate.add_days(rng.gen_range(30..=90));
            let receiptdate = shipdate.add_days(rng.gen_range(1..=30));
            let shipped = shipdate <= current;
            let returnflag = if shipped {
                if rng.gen_bool(0.5) {
                    &v_r
                } else {
                    &v_a
                }
            } else {
                &v_n
            };
            let finished = shipped;
            let linestatus = if finished { &v_f } else { &v_o };
            if finished {
                any_f = true;
            } else {
                all_f = false;
            }
            total += extended * (1.0 + tax) * (1.0 - discount);
            lineitem_t.push_row(vec![
                Value::Int(k),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(line),
                Value::Num(quantity),
                Value::Num(extended),
                Value::Num(discount),
                Value::Num(tax),
                returnflag.clone(),
                linestatus.clone(),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                v_instructions[rng.gen_range(0..4)].clone(),
                v_shipmodes[rng.gen_range(0..7)].clone(),
                v_li_comment.clone(),
            ]);
        }
        let status = if all_f {
            &v_f
        } else if any_f {
            &v_p
        } else {
            &v_o
        };
        orders_t.push_row(vec![
            Value::Int(k),
            Value::Int(custkey),
            status.clone(),
            Value::Num((total * 100.0).round() / 100.0),
            Value::Date(odate),
            v_priorities[rng.gen_range(0..5)].clone(),
            Value::str(&format!("Clerk#{:09}", rng.gen_range(1..1000))),
            Value::Int(0),
            comment.clone(),
        ]);
    }
    let rel_of = |name: &str| catalog.relation(name).expect("known relation").rel;
    db.insert(rel_of("orders"), orders_t);
    db.insert(rel_of("lineitem"), lineitem_t);

    // Alias tables copy the base tables' *columnar* data: dense
    // Int/Num columns memcpy and Val columns bump `Arc` refcounts, so
    // aliasing never re-materializes row-major copies (at SF 1 the old
    // per-alias row clones dominated generation time and peak memory).
    for (alias, _, base) in ALIASES {
        let table = db.table(rel_of(base)).expect("alias base loaded").clone();
        db.insert(rel_of(alias), table);
    }

    (catalog, db)
}

/// Lineitem count of a generated database (useful for stats).
pub fn table_len(catalog: &Catalog, db: &Database, name: &str) -> usize {
    let rel = catalog.relation(name).expect("known relation").rel;
    db.table(rel).map(Table::len).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let (c1, d1) = generate(0.001, 42);
        let (_, d2) = generate(0.001, 42);
        let l = c1.relation("lineitem").unwrap().rel;
        let a = d1.table(l).unwrap();
        let b = d2.table(l).unwrap();
        assert_eq!(a.len(), b.len());
        assert!(a.value(5, 0).sql_eq(&b.value(5, 0)));
    }

    #[test]
    fn cardinalities_scale() {
        let (c, db) = generate(0.002, 1);
        assert_eq!(table_len(&c, &db, "region"), 5);
        assert_eq!(table_len(&c, &db, "nation"), 25);
        assert_eq!(table_len(&c, &db, "supplier"), 20);
        assert_eq!(table_len(&c, &db, "part"), 400);
        assert_eq!(table_len(&c, &db, "partsupp"), 1600);
        assert_eq!(table_len(&c, &db, "customer"), 300);
        assert_eq!(table_len(&c, &db, "orders"), 3000);
        let li = table_len(&c, &db, "lineitem");
        assert!((3000..=21_000).contains(&li), "{li}");
    }

    #[test]
    fn aliases_mirror_base_data() {
        let (c, db) = generate(0.001, 7);
        assert_eq!(
            table_len(&c, &db, "lineitem"),
            table_len(&c, &db, "lineitem2")
        );
        assert_eq!(table_len(&c, &db, "nation"), table_len(&c, &db, "nation2"));
    }

    #[test]
    fn referential_integrity() {
        let (c, db) = generate(0.001, 3);
        let orders = db.table(c.relation("orders").unwrap().rel).unwrap();
        let n_cust = table_len(&c, &db, "customer") as i64;
        for row in &orders.to_rows() {
            let ck = row[1].as_int().unwrap();
            assert!(ck >= 1 && ck <= n_cust, "dangling o_custkey {ck}");
        }
        let lineitem = db.table(c.relation("lineitem").unwrap().rel).unwrap();
        let n_orders = orders.len() as i64;
        let n_supp = table_len(&c, &db, "supplier") as i64;
        for row in &lineitem.to_rows() {
            let ok = row[0].as_int().unwrap();
            assert!(ok >= 1 && ok <= n_orders);
            let sk = row[2].as_int().unwrap();
            assert!(sk >= 1 && sk <= n_supp, "dangling l_suppkey {sk}");
        }
    }

    #[test]
    fn date_ranges_respected() {
        let (c, db) = generate(0.001, 5);
        let orders = db.table(c.relation("orders").unwrap().rel).unwrap();
        for row in &orders.to_rows() {
            if let Value::Date(d) = row[4] {
                assert!(d >= start_date() && d <= end_order_date());
            } else {
                panic!("o_orderdate not a date");
            }
        }
    }

    #[test]
    fn value_pools_present() {
        // The selective values queried by Q3/Q5/Q12/Q19 must occur.
        let (c, db) = generate(0.005, 11);
        let cust = db.table(c.relation("customer").unwrap().rel).unwrap();
        assert!(cust
            .to_rows()
            .iter()
            .any(|r| r[6].sql_eq(&Value::str("BUILDING"))));
        let li = db.table(c.relation("lineitem").unwrap().rel).unwrap();
        assert!(li
            .to_rows()
            .iter()
            .any(|r| r[14].sql_eq(&Value::str("MAIL"))));
        let part = db.table(c.relation("part").unwrap().rel).unwrap();
        assert!(part
            .to_rows()
            .iter()
            .any(|r| { matches!(&r[4], Value::Str(s) if s.ends_with("BRASS")) }));
    }
}
