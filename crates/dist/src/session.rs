//! Persistent multi-query sessions: amortize trust establishment
//! across queries.
//!
//! [`Simulator::run`](crate::Simulator::run) is protocol-faithful to a
//! fault: every run provisions fresh Def. 6.1 cluster keys, re-ships
//! the Paillier public halves, and (before this layer existed)
//! re-spawned every party thread. After the crypto hot path got cheap,
//! those *per-run fixed costs* dominate short queries. A production
//! multi-provider deployment — like SMCQL's federated honest-broker
//! sessions — holds long-lived connections to each provider and runs
//! many queries per trust establishment; a [`Session`] is that model:
//!
//! * **party threads spawn once**, at [`Session::open`], and idle on
//!   long-lived mailboxes between queries ([`runtime`](crate::runtime));
//! * **key provisioning is incremental** — generated [`ClusterKey`]
//!   material is cached per [`ClusterSig`] (cluster attribute set +
//!   holder set), so a repeated query re-uses already-provisioned keys
//!   and already-delivered Paillier public halves, and only *new*
//!   clusters are generated and shipped;
//! * **authorization stays per-query** — every [`Session::execute`]
//!   re-checks Def. 4.1 for every node and re-seals the signed request
//!   envelopes (`[[q_S, keys]_priU]_pubS`); only trust, transport and
//!   key material amortize;
//! * **errors abort the query, not the session** — a failed query
//!   drains cleanly (see the epoch protocol in
//!   [`runtime`](crate::runtime)) and the session keeps serving;
//! * [`Session::revoke_key`] models policy change: it drops the key
//!   from every ring *and* invalidates the cache entry, so the next
//!   query that needs the cluster provisions fresh material.

use crate::error::SimError;
use crate::fault::{FaultPlan, RetryPolicy};
use crate::runtime::{PartyThreads, QueryJob};
use crate::transport::{EdgeRecovery, FaultState, TransportKind, WireStats};
use crate::{audit, Party, Report, PAILLIER_BITS, RSA_BITS};
use mpq_algebra::{AttrId, Catalog, NodeId, Operator, QueryPlan, RelId, SubjectId};
use mpq_core::authz::{Policy, SubjectView};
use mpq_core::dispatch::dispatch;
use mpq_core::extend::ExtendedPlan;
use mpq_core::keys::{ClusterSig, KeyPlan};
use mpq_core::subjects::Subjects;
use mpq_crypto::keyring::{ClusterKey, KeyRing};
use mpq_crypto::rsa::{RsaKeypair, RsaPublic, SignedEnvelope};
use mpq_exec::{
    assign_schemes, effective_children, execute_step, fused_encrypt_child, rewrite_literals,
    Database, ExecCtx, SchemePlan, Table, WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Every runtime knob of a [`Session`] (and, through
/// [`Simulator::with_config`](crate::Simulator::with_config), of a
/// simulator) in one builder: seed, worker pool, static pre-flight,
/// transport, and receive timeout. The legacy knob methods
/// (`Session::with_workers`, `Session::without_preflight`) remain as
/// thin shims over this.
///
/// # Example
///
/// ```
/// use mpq_dist::{SessionConfig, TransportKind};
///
/// let config = SessionConfig::new(7)
///     .with_workers(2)
///     .transport(TransportKind::Tcp)
///     .timeout(std::time::Duration::from_secs(3));
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Master seed: RSA keypairs, cluster-key material, envelope
    /// session keys, and the derived execution seed all flow from it.
    pub seed: u64,
    /// `Some(n)`: a private worker pool of `n` threads; `None`: the
    /// process-global pool.
    pub workers: Option<usize>,
    /// Run the static verifier (`mpq_core::verify`) before spending
    /// crypto work on a query (on by default).
    pub preflight: bool,
    /// How data-plane messages travel between parties.
    pub transport: TransportKind,
    /// How long a party waits for an expected data message before
    /// aborting with a typed [`TransportError`](crate::TransportError).
    /// `None` defers to the transport default: wait forever in-proc
    /// (peers share our fate), 10 s over TCP (a dead peer must abort
    /// the query, not hang it).
    pub timeout: Option<Duration>,
    /// Deterministic transport-fault schedule (chaos testing). `None`
    /// falls back to the `MPQ_FAULTS` environment variable, then to no
    /// injection.
    pub faults: Option<FaultPlan>,
    /// Bounded per-message retry with seeded backoff, applied to every
    /// data-plane send (real failures and injected ones alike).
    pub retry: RetryPolicy,
    /// Footnote-2 filter-before-encrypt fusion: a `Select` directly
    /// above an `Encrypt` assigned to the *same* subject evaluates the
    /// condition on the plaintext input and encrypts only the
    /// surviving tuples (on by default; results and per-edge bytes are
    /// bit-identical either way).
    pub fuse: bool,
}

impl SessionConfig {
    /// Defaults: in-proc transport, shared global pool, pre-flight on,
    /// transport-default timeout.
    pub fn new(seed: u64) -> SessionConfig {
        SessionConfig {
            seed,
            workers: None,
            preflight: true,
            transport: TransportKind::InProc,
            timeout: None,
            faults: None,
            retry: RetryPolicy::default(),
            fuse: true,
        }
    }

    /// Use a private worker pool of `workers` threads.
    pub fn with_workers(mut self, workers: usize) -> SessionConfig {
        self.workers = Some(workers);
        self
    }

    /// Disable the static pre-flight verifier, leaving only the dynamic
    /// defenses.
    pub fn without_preflight(mut self) -> SessionConfig {
        self.preflight = false;
        self
    }

    /// Select the data-plane transport.
    pub fn transport(mut self, transport: TransportKind) -> SessionConfig {
        self.transport = transport;
        self
    }

    /// Bound the wait for any expected data message.
    pub fn timeout(mut self, timeout: Duration) -> SessionConfig {
        self.timeout = Some(timeout);
        self
    }

    /// Inject transport faults per the given deterministic schedule.
    pub fn faults(mut self, plan: FaultPlan) -> SessionConfig {
        self.faults = Some(plan);
        self
    }

    /// Override the per-message retry budget and backoff.
    pub fn retry(mut self, retry: RetryPolicy) -> SessionConfig {
        self.retry = retry;
        self
    }

    /// Enable or disable footnote-2 filter-before-encrypt fusion
    /// (the fusion-differential tests compare both settings).
    pub fn fuse(mut self, on: bool) -> SessionConfig {
        self.fuse = on;
        self
    }

    /// The effective receive timeout: the explicit setting, or the
    /// transport default (`None` in-proc, 10 s over TCP).
    pub fn effective_timeout(&self) -> Option<Duration> {
        self.timeout.or(match self.transport {
            TransportKind::InProc => None,
            TransportKind::Tcp => Some(Duration::from_secs(10)),
        })
    }
}

/// Output of the shared preparation phase (runtime authorization,
/// incremental Def. 6.1 key provisioning, literal rewriting, envelope
/// sealing) — everything both execution paths consume.
pub(crate) struct Prepared {
    /// The extended plan with encrypted literals spliced in.
    pub(crate) exec_plan: QueryPlan,
    /// Per-attribute encryption schemes.
    pub(crate) schemes: SchemePlan,
    /// Attribute → session-wide cluster-key id.
    pub(crate) key_of_attr: HashMap<AttrId, u32>,
    /// Execution order (postorder of the extended plan).
    pub(crate) order: Vec<NodeId>,
    /// Envelope bytes already accounted per user → subject edge.
    pub(crate) transfers: HashMap<(SubjectId, SubjectId), usize>,
    /// Batched signed requests: recipient, sealed envelope, and the
    /// payload the recipient must recover for verification.
    pub(crate) envelopes: Vec<(SubjectId, SignedEnvelope, Vec<u8>)>,
    /// Number of dispatched sub-query requests (before batching).
    pub(crate) requests: usize,
    /// Base seed for per-(node, column, row) encryption randomness,
    /// derived from the session seed; identical for both execution
    /// paths and for every query of the session.
    pub(crate) exec_seed: u64,
    /// Footnote-2 fusion sites: Encrypt nodes folded into their parent
    /// Select (same assignee, fusible predicate). These never execute
    /// as standalone steps in either runtime.
    pub(crate) fused: HashSet<NodeId>,
}

/// Footnote-2 fusion sites of an assigned plan: every Encrypt folded
/// into its parent Select (fusible predicate, same assignee — a
/// different assignee must never see the Encrypt's plaintext input).
/// Deterministic in `(plan, assignment)`, so the federated coordinator
/// and its servers compute identical sets without shipping them.
pub(crate) fn fusion_sites(
    plan: &QueryPlan,
    assignment: &HashMap<NodeId, SubjectId>,
) -> HashSet<NodeId> {
    let mut fused = HashSet::new();
    for id in plan.postorder() {
        if let Some(enc_id) = fused_encrypt_child(plan, id) {
            if let (Some(a), Some(b)) = (assignment.get(&id), assignment.get(&enc_id)) {
                if a == b {
                    fused.insert(enc_id);
                }
            }
        }
    }
    fused
}

/// One cached Def. 6.1 cluster: the generated material (already in the
/// holders' rings) and the subjects that already received the Paillier
/// public half.
struct CachedCluster {
    material: ClusterKey,
    /// Subject indices holding at least the public (aggregation) half —
    /// holders included, since a full key implies the public half.
    publics: HashSet<usize>,
}

/// Amortization counters of one [`Session`] — how much Def. 6.1 work
/// the cluster-key cache saved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries executed (either path), failures included.
    pub queries: usize,
    /// Clusters generated, sealed, and shipped to their holders.
    pub clusters_provisioned: usize,
    /// Cluster cache hits: queries needed the key, the session already
    /// held it.
    pub clusters_reused: usize,
    /// Paillier public halves delivered to computing non-holders
    /// (deliveries, not re-sends: a subject that already has the half
    /// is never re-shipped it).
    pub publics_delivered: usize,
}

/// A persistent multi-query execution context over one set of parties.
///
/// See the [module docs](self) for what amortizes across queries and
/// what is re-checked per query. [`Simulator`](crate::Simulator) is a
/// thin protocol-faithful wrapper that resets the provisioning cache
/// before every run.
///
/// # Example
///
/// ```
/// use mpq_core::fixtures::RunningExample;
/// use mpq_core::keys::plan_keys;
/// use mpq_dist::Session;
/// use mpq_exec::Database;
///
/// let ex = RunningExample::new();
/// let mut db = Database::new();
/// db.load(&ex.catalog, "Hosp", RunningExample::sample_hosp_rows());
/// db.load(&ex.catalog, "Ins", RunningExample::sample_ins_rows());
/// let ext = ex.fig7a_extended();
/// let keys = plan_keys(&ext);
///
/// let mut session = Session::open(&ex.catalog, &ex.subjects, &ex.policy, &db, 7);
/// let first = session.execute(&ext, &keys, ex.subject("U")).unwrap();
/// let second = session.execute(&ext, &keys, ex.subject("U")).unwrap();
/// assert_eq!(first.result.to_rows(), second.result.to_rows());
/// // The second query re-used every cluster the first one provisioned.
/// assert_eq!(session.stats().clusters_provisioned, keys.keys.len());
/// assert_eq!(session.stats().clusters_reused, keys.keys.len());
/// ```
pub struct Session {
    catalog: Arc<Catalog>,
    subjects: Arc<Subjects>,
    /// Per-subject overall views, fixed for the session's lifetime
    /// (the policy itself is immutable; key *revocation* is modeled by
    /// [`Session::revoke_key`]).
    views: Arc<Vec<SubjectView>>,
    parties: Vec<Arc<Party>>,
    rng: StdRng,
    /// Derived once from the constructor seed; see `Prepared::exec_seed`.
    exec_seed: u64,
    /// Worker pool for intra-operator data parallelism; shared by every
    /// party loop (and the sequential interpreter), so concurrently
    /// executing parties draw threads from one budget instead of
    /// oversubscribing the machine.
    pool: WorkerPool,
    /// The cluster-key cache: Def. 6.1 material by cluster signature.
    cache: HashMap<ClusterSig, CachedCluster>,
    /// Next session-wide cluster-key id. Plan-local key ids (positions
    /// in a `KeyPlan`) are remapped onto these so material cached from
    /// one query is addressable from every later one.
    next_key_id: u32,
    /// The long-lived party threads.
    threads: PartyThreads,
    stats: SessionStats,
    /// Run the static verifier (`mpq_core::verify`) before spending any
    /// crypto work on a query. On by default; the runtime-enforcement
    /// tests opt out to exercise the dynamic checks the verifier
    /// subsumes.
    preflight: bool,
    /// Receive timeout handed to every query's job (see
    /// [`SessionConfig::effective_timeout`]).
    timeout: Option<Duration>,
    /// Footnote-2 fusion enabled for this session's queries.
    fuse: bool,
    /// Fault-injection state shared by every party's wire; swapping
    /// the plan (see [`Session::set_faults`]) reaches all of them.
    faults: Arc<Mutex<FaultState>>,
    /// Per-edge recovery counters shared by every party's wire.
    wire_stats: Arc<WireStats>,
}

impl Session {
    /// Open a session: set up one party per registered subject (RSA
    /// envelope keypair, empty key ring, the base relations it is the
    /// data authority of) and spawn the long-lived party loops.
    ///
    /// A relation without a declared authority is held by nobody —
    /// executing a plan over it fails at that leaf.
    ///
    /// Convenience shim over [`Session::open_with`] with the default
    /// [`SessionConfig`] (in-proc transport, shared pool, pre-flight
    /// on).
    pub fn open(
        catalog: &Catalog,
        subjects: &Subjects,
        policy: &Policy,
        db: &Database,
        seed: u64,
    ) -> Session {
        Session::open_with(catalog, subjects, policy, db, SessionConfig::new(seed))
    }

    /// Open a session with an explicit [`SessionConfig`] — the one
    /// place all runtime knobs live. With
    /// [`TransportKind::Tcp`] the parties exchange data-plane messages
    /// as length-prefixed frames over loopback sockets instead of
    /// in-process channels (identical results and byte accounting; the
    /// differential tests compare the two).
    pub fn open_with(
        catalog: &Catalog,
        subjects: &Subjects,
        policy: &Policy,
        db: &Database,
        config: SessionConfig,
    ) -> Session {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut parties: Vec<Party> = subjects
            .iter()
            .map(|_| Party {
                rsa: RsaKeypair::generate(&mut rng, RSA_BITS),
                ring: KeyRing::new(),
                store: Database::new(),
            })
            .collect();
        for rel in catalog.relations() {
            if let (Some(owner), Some(table)) = (subjects.authority(rel.rel), db.table(rel.rel)) {
                parties[owner.index()].store.insert(rel.rel, table.clone());
            }
        }
        let catalog = Arc::new(catalog.clone());
        let subjects = Arc::new(subjects.clone());
        let views = Arc::new(policy.all_views(&catalog, &subjects));
        let parties: Vec<Arc<Party>> = parties.into_iter().map(Arc::new).collect();
        let plan = config.faults.clone().or_else(FaultPlan::from_env);
        let faults = Arc::new(Mutex::new(FaultState::new(plan)));
        let wire_stats = Arc::new(WireStats::default());
        let threads = PartyThreads::spawn(
            &catalog,
            &views,
            &parties,
            config.transport,
            config.seed,
            Arc::clone(&faults),
            config.retry,
            Arc::clone(&wire_stats),
        );
        Session {
            catalog,
            subjects,
            views,
            parties,
            rng,
            exec_seed: config.seed ^ 0x6d70_715f_6578_6563, // "mpq_exec"
            pool: match config.workers {
                Some(n) => WorkerPool::new(n),
                None => WorkerPool::global(),
            },
            cache: HashMap::new(),
            next_key_id: 0,
            threads,
            stats: SessionStats::default(),
            preflight: config.preflight,
            timeout: config.effective_timeout(),
            fuse: config.fuse,
            faults,
            wire_stats,
        }
    }

    /// Deprecated: use [`Session::open_with`] with
    /// [`SessionConfig::with_workers`]. Replaces the shared worker pool
    /// with a private one of `workers` threads (differential tests
    /// sweep worker counts; results are identical by construction).
    /// Takes effect from the next query — the pool travels with each
    /// query's job, not with the threads.
    pub fn with_workers(mut self, workers: usize) -> Session {
        self.pool = WorkerPool::new(workers);
        self
    }

    /// Deprecated: use [`Session::open_with`] with
    /// [`SessionConfig::without_preflight`]. Disables the static
    /// pre-flight verifier for this session's queries, leaving only the
    /// dynamic defenses (per-node Def. 4.1 re-check, wire audit,
    /// key-ring enforcement). Exists for the runtime-enforcement tests,
    /// which deliberately execute plans the verifier would reject in
    /// order to prove the dynamic layer catches them too.
    pub fn without_preflight(mut self) -> Session {
        self.preflight = false;
        self
    }

    /// Shared preparation, both execution paths: runtime authorization
    /// re-check (Def. 4.1 per node), *incremental* Def. 6.1 key
    /// provisioning through the cluster cache, scheme assignment,
    /// encrypted-literal rewriting, and sealing of the signed request
    /// envelopes (batched per subject-pair edge). Consumes the session
    /// RNG in a fixed order so a fresh session's first query is
    /// bit-identical to a fresh `Simulator` run with the same seed.
    fn prepare(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
    ) -> Result<Prepared, SimError> {
        let order = ext.plan.postorder();
        let assignee_of = |id: NodeId| -> Result<SubjectId, SimError> {
            ext.assignment
                .get(&id)
                .copied()
                .ok_or(SimError::Unassigned(id))
        };

        // ---- 1. runtime authorization check (Def. 4.1 per node) -----
        // Authorization never amortizes: the signed request is a
        // per-query grant, so every execute re-verifies every node.
        for &id in &order {
            let node = ext.plan.node(id);
            let subject = assignee_of(id)?;
            if let Operator::Base { rel, .. } = &node.op {
                // Base relations never leave their authority: the
                // leaf's executor must be the storing authority, which
                // sees its own relation by construction.
                let authority = self
                    .subjects
                    .authority(*rel)
                    .ok_or(SimError::NoAuthority(*rel))?;
                if subject != authority {
                    return Err(SimError::NotTheAuthority {
                        node: id,
                        subject,
                        authority,
                    });
                }
                continue;
            }
            let view = &self.views[subject.index()];
            for &child in &node.children {
                if let Err(violation) = view.check(&ext.profiles[child.index()]) {
                    return Err(SimError::Unauthorized {
                        node: id,
                        subject,
                        violation,
                    });
                }
            }
            if let Err(violation) = view.check(&ext.profiles[id.index()]) {
                return Err(SimError::Unauthorized {
                    node: id,
                    subject,
                    violation,
                });
            }
        }

        // ---- 1b. static pre-flight (mpq_core::verify) ----------------
        // The full multi-pass verifier, after the per-node checks above
        // (preserving their error precedence) and before any key
        // material is generated: a plan that would leak on some edge,
        // miss a Def. 6.1 key, or hit a scheme conflict is refused
        // without spending a single modexp.
        if self.preflight {
            let report = mpq_core::verify::verify_extended(
                ext,
                keys,
                &self.catalog,
                &self.subjects,
                &self.views,
                Some(user),
            );
            if !report.is_clean() {
                return Err(SimError::Verify(report));
            }
        }

        // ---- 2. incremental key provisioning (Def. 6.1) --------------
        let mut key_of_attr: HashMap<AttrId, u32> = HashMap::new();
        let mut computing: Vec<bool> = vec![false; self.parties.len()];
        for &id in &order {
            computing[assignee_of(id)?.index()] = true;
        }
        computing[user.index()] = true;
        // Predicates over encrypted attributes need encrypted literals.
        // Conceptually the key-holding authorities rewrite their
        // conditions while preparing the sub-queries (§6); this ring
        // stands in for them at dispatch time.
        let dispatcher_ring = KeyRing::new();
        for plan_key in &keys.keys {
            let sig = plan_key.cluster_sig();
            if !self.cache.contains_key(&sig) {
                // A cluster this session has never provisioned: generate
                // under a fresh session-wide id and ship the full key to
                // every Def. 6.1 holder.
                let id = self.next_key_id;
                self.next_key_id += 1;
                let material = ClusterKey::generate(&mut self.rng, id, PAILLIER_BITS);
                for holder in &plan_key.holders {
                    self.parties[holder.index()].ring.insert(material.clone());
                }
                let publics: HashSet<usize> = plan_key.holders.iter().map(|s| s.index()).collect();
                self.cache
                    .insert(sig.clone(), CachedCluster { material, publics });
                self.stats.clusters_provisioned += 1;
            } else {
                self.stats.clusters_reused += 1;
            }
            let cached = self.cache.get_mut(&sig).expect("just inserted or present");
            for a in plan_key.attrs.iter() {
                key_of_attr.insert(a, cached.material.id);
            }
            // Public Paillier halves for every computing non-holder not
            // yet served: enough to aggregate, never to decrypt.
            for (i, party) in self.parties.iter().enumerate() {
                if computing[i] && !cached.publics.contains(&i) {
                    party
                        .ring
                        .insert_public(cached.material.id, cached.material.paillier_public());
                    cached.publics.insert(i);
                    self.stats.publics_delivered += 1;
                }
            }
            if !plan_key.holders.is_empty() {
                dispatcher_ring.insert(cached.material.clone());
            }
        }

        // ---- 3. dispatch: signed, encrypted sub-query requests -------
        let schemes = assign_schemes(&ext.plan).map_err(|e| SimError::Scheme(e.to_string()))?;
        let exec_plan = rewrite_literals(
            &ext.plan,
            &self.catalog,
            &schemes,
            &key_of_attr,
            &dispatcher_ring,
            &mut self.rng,
        )
        .map_err(SimError::Rewrite)?;

        // Batch the request payloads per user → subject edge: one
        // envelope (one signature, one session key) per recipient,
        // regardless of how many sub-query regions it executes.
        let d = dispatch(ext, keys, &self.catalog, &self.subjects);
        let mut batches: Vec<Vec<u8>> = vec![Vec::new(); self.parties.len()];
        for req in &d.requests {
            let batch = &mut batches[req.subject.index()];
            if !batch.is_empty() {
                batch.extend_from_slice(b"\n===\n");
            }
            batch.extend_from_slice(req.sql.as_bytes());
            for key_id in &req.keys {
                batch.extend_from_slice(format!("\nkey:{key_id}").as_bytes());
            }
        }
        let mut transfers: HashMap<(SubjectId, SubjectId), usize> = HashMap::new();
        let mut envelopes: Vec<(SubjectId, SignedEnvelope, Vec<u8>)> = Vec::new();
        for (i, payload) in batches.into_iter().enumerate() {
            if payload.is_empty() {
                continue;
            }
            let to = SubjectId::from_index(i);
            let envelope = SignedEnvelope::seal(
                &mut self.rng,
                &payload,
                &self.parties[user.index()].rsa,
                &self.parties[i].rsa.public,
            );
            if to != user {
                *transfers.entry((user, to)).or_default() +=
                    envelope.wrapped_key.len() + envelope.body.len() + envelope.signature.len();
            }
            envelopes.push((to, envelope, payload));
        }

        // ---- 3b. footnote-2 fusion sites -----------------------------
        // Fold an Encrypt into its parent Select when the rewritten
        // predicate is fusible *and* both nodes run under the same
        // subject: the executor already sees the Encrypt's plaintext
        // input (it was about to encrypt it), so evaluating the
        // condition first reveals nothing.
        let fused = if self.fuse {
            fusion_sites(&exec_plan, &ext.assignment)
        } else {
            HashSet::new()
        };

        Ok(Prepared {
            exec_plan,
            schemes,
            key_of_attr,
            order,
            transfers,
            envelopes,
            requests: d.requests.len(),
            exec_seed: self.exec_seed,
            fused,
        })
    }

    /// Package a prepared query for the party threads.
    fn job(&self, prepared: Prepared, ext: &ExtendedPlan, user: SubjectId) -> QueryJob {
        let parents = prepared.exec_plan.parents();
        let mut is_participant = vec![false; self.parties.len()];
        for id in &prepared.order {
            is_participant[ext.assignment[id].index()] = true;
        }
        is_participant[user.index()] = true;
        let participants: Vec<SubjectId> = (0..self.parties.len())
            .map(SubjectId::from_index)
            .filter(|s| is_participant[s.index()])
            .collect();
        QueryJob {
            prepared,
            assignment: ext.assignment.clone(),
            parents,
            participants,
            user,
            user_public: self.parties[user.index()].rsa.public.clone(),
            pool: self.pool.clone(),
            timeout: self.timeout,
        }
    }

    /// Run one query over the session's persistent parties, on behalf
    /// of `user`, with the Def. 6.1 key establishment `keys`.
    ///
    /// This is the **concurrent** runtime: the long-lived party threads
    /// wake, exchange result tables over their mailboxes, and every
    /// node executes as soon as its operands arrive at its assignee
    /// (see [`runtime`](crate::runtime)). Results and per-edge byte
    /// counts are bit-identical to [`Session::execute_sequential`].
    ///
    /// An `Err` aborts this query only; the session remains usable.
    pub fn execute(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
    ) -> Result<Report, SimError> {
        self.stats.queries += 1;
        let prepared = self.prepare(ext, keys, user)?;
        let job = self.job(prepared, ext, user);
        self.threads.run(job)
    }

    /// Run one query bottom-up on the calling thread — the reference
    /// interpreter the concurrent runtime is differentially tested
    /// against. Same preparation (and the same key cache), same
    /// results, same byte accounting; no pipeline parallelism.
    pub fn execute_sequential(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
    ) -> Result<Report, SimError> {
        self.stats.queries += 1;
        let prepared = self.prepare(ext, keys, user)?;
        let user_public = self.parties[user.index()].rsa.public.clone();

        // Envelopes open and verify at their recipients (here: inline,
        // since everything runs on one thread).
        for (to, envelope, expected) in &prepared.envelopes {
            let opened = envelope
                .open(&self.parties[to.index()].rsa, &user_public)
                .ok_or(SimError::Envelope { to: *to })?;
            if &opened != expected {
                return Err(SimError::Envelope { to: *to });
            }
        }

        // ---- 4. bottom-up execution, one subject at a time ----------
        let mut transfers = prepared.transfers.clone();
        let mut results: HashMap<NodeId, Table> = HashMap::new();
        for &id in &prepared.order {
            // Footnote-2 fused Encrypts never execute as standalone
            // steps: their parent Select filters the plaintext input
            // and encrypts only the survivors.
            if prepared.fused.contains(&id) {
                continue;
            }
            let executor = ext.assignment[&id];
            // Tables produced by another subject cross the wire here:
            // account the bytes and audit every cell against the
            // receiving subject's view. Fused Encrypts are looked
            // through to the plaintext operands actually consumed.
            for child in effective_children(&prepared.exec_plan, id, &prepared.fused) {
                let producer = ext.assignment[&child];
                if producer != executor {
                    let table = results.get(&child).expect("child executed before parent");
                    audit::audit_transfer_with(table, &self.views[executor.index()], &self.pool)?;
                    *transfers.entry((producer, executor)).or_default() += table.byte_size();
                }
            }
            let party = &self.parties[executor.index()];
            let ctx = ExecCtx::builder(
                &self.catalog,
                &party.store,
                &party.ring,
                &prepared.schemes,
                &prepared.key_of_attr,
            )
            .pool(self.pool.clone())
            .seed(prepared.exec_seed)
            .build();
            let table = execute_step(&prepared.exec_plan, id, &mut results, &ctx)?;
            results.insert(id, table);
        }

        // ---- 5. deliver the result to the user ----------------------
        let root = prepared.exec_plan.root();
        let root_subject = ext.assignment[&root];
        let result = results.remove(&root).expect("root executed");
        audit::audit_transfer_with(&result, &self.views[user.index()], &self.pool)?;
        if root_subject != user {
            *transfers.entry((root_subject, user)).or_default() += result.byte_size();
        }

        Ok(Report {
            result,
            transfers,
            request_bytes: prepared.transfers.clone(),
            requests: prepared.requests,
        })
    }

    /// Amortization counters: clusters provisioned vs re-used, public
    /// halves delivered, queries served.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Swap the transport fault schedule for the session's *next*
    /// queries (chaos tests sweep many schedules over one long-lived
    /// session, amortizing party setup). Resets the per-edge fault
    /// counters — each schedule starts from `frame_index = 0` — and
    /// the recovery counters, so [`Session::recovery_stats`] reads as
    /// "since the last schedule swap". Safe between queries only;
    /// [`Session::execute`] drains every participant before returning,
    /// so there is no in-flight send to race with.
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults
            .lock()
            .expect("fault lock poisoned")
            .set_plan(plan);
        self.wire_stats.reset();
    }

    /// Per-edge delivery/retry/injection counters accumulated since
    /// the session opened or the last [`Session::set_faults`]. A
    /// successful query with a nonzero retry count is a *recovered*
    /// run — the chaos soak counts these; the retry-determinism
    /// proptest asserts they are identical across transport backends.
    pub fn recovery_stats(&self) -> HashMap<(SubjectId, SubjectId), EdgeRecovery> {
        self.wire_stats.snapshot()
    }

    /// Number of cluster keys currently cached (provisioned and not
    /// revoked).
    pub fn cached_clusters(&self) -> usize {
        self.cache.len()
    }

    /// Forget every provisioned cluster (the material is also dropped
    /// from the holders' rings) without touching the party threads.
    /// The next query provisions from scratch, with session-wide key
    /// ids restarting at 0 — which is exactly how
    /// [`Simulator`](crate::Simulator) turns each `run` into an
    /// independent one-query session.
    pub fn reset_provisioning(&mut self) {
        for cached in self.cache.values() {
            for party in self.parties.iter() {
                party.ring.revoke(cached.material.id);
            }
        }
        self.cache.clear();
        self.next_key_id = 0;
    }

    /// Revoke the full cluster key `id` from every party, keeping only
    /// the public aggregation halves, and invalidate the session's
    /// cache entry for its cluster: the next query needing that cluster
    /// re-provisions *fresh* material under a new id (a revoked key
    /// must never come back from a cache).
    pub fn revoke_key(&mut self, id: u32) {
        for party in self.parties.iter() {
            party.ring.revoke(id);
        }
        self.cache.retain(|_, c| c.material.id != id);
    }

    /// The RSA public key of a subject (for tests probing the envelope
    /// layer).
    pub fn public_key_of(&self, s: SubjectId) -> RsaPublic {
        self.parties[s.index()].rsa.public.clone()
    }

    /// `true` if `s` currently holds the full cluster key `id`.
    pub fn holds_key(&self, s: SubjectId, id: u32) -> bool {
        self.parties[s.index()].ring.holds(id)
    }

    /// Which base relations a subject stores (the authority
    /// partitioning computed by [`Session::open`]).
    pub fn stored_relations(&self, s: SubjectId) -> Vec<RelId> {
        self.catalog
            .relations()
            .iter()
            .map(|r| r.rel)
            .filter(|&r| self.parties[s.index()].store.table(r).is_some())
            .collect()
    }

    /// Tear the session down: the party threads receive a shutdown
    /// message and are joined. Dropping the session does the same;
    /// `close` exists to make the teardown point explicit.
    pub fn close(self) {}
}
