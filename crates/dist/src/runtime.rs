//! The concurrent multi-party runtime: one long-lived OS thread per
//! subject, `mpsc` channels for the wire.
//!
//! This is the behavioral counterpart of the paper's §6 execution
//! story: "each subject executes its assigned sub-query and forwards
//! encrypted results". Every subject runs a *party loop* on its own
//! thread, spawned **once** when a [`Session`](crate::Session) opens
//! and reused for every query the session executes (re-spawning per
//! query was one of the fixed per-run costs the session layer exists
//! to amortize). Between queries a party sits idle on its mailbox;
//! each query (a `QueryJob`, the output of the session's preparation
//! phase) wakes the participating parties, and each steps a node of
//! the extended plan as soon as all of its operands are materialized
//! locally, so independent subtrees assigned to different subjects
//! execute concurrently (pipeline parallelism across providers).
//!
//! Guarantees relative to the sequential interpreter
//! ([`Session::execute_sequential`](crate::Session::execute_sequential)):
//!
//! * **result equivalence** — every node executes under a fresh
//!   per-node [`ExecCtx`] exactly as in the sequential path, so the
//!   produced tables (ciphertexts included) are bit-identical
//!   regardless of interleaving;
//! * **identical byte accounting** — tables are accounted on the same
//!   producer → consumer edges, by the receiving party; request
//!   envelopes are sealed (batched per subject-pair edge) before any
//!   party wakes, by the shared preparation phase;
//! * **audit on receive** — the cell-level
//!   [`audit_transfer_with`] check runs at
//!   the receiving party, on its own thread, before the table is used.
//!
//! Failure handling: a party that fails (audit violation, missing key,
//! envelope tampering) broadcasts an abort message to the query's
//! other participants and reports its error; peers receiving `Abort`
//! stop without an error of their own. The coordinator returns the
//! failing party's error, picking the lowest subject id when several
//! fail independently — and the session remains usable: the party
//! threads return to their mailboxes and the next query runs normally.
//!
//! Because mailboxes outlive queries, every data message carries the
//! query *epoch* it belongs to. A message that arrives after its query
//! already ended (e.g. a table sent concurrently with an abort) is
//! dropped when a later epoch begins; a message that arrives *before*
//! its recipient has been woken for that epoch is stashed and replayed
//! once the matching wake-up arrives. Epochs are what make an aborted
//! query leave no residue for the next one.
//!
//! Messages additionally carry a per-edge *sequence number* assigned
//! by the sending `Wire` (crate-private, see `transport`). The sender
//! may re-send a message whose
//! delivery failed ambiguously (a connection reset cannot tell the
//! sender whether the frame landed first); the receiver drops
//! duplicates by `(from, seq)` before accounting, so recovery never
//! double-counts bytes, double-applies a table, or double-decrements
//! the pending-input counter.

use crate::audit::audit_transfer_with;
use crate::error::SimError;
use crate::fault::RetryPolicy;
use crate::session::Prepared;
use crate::transport::{
    FaultState, InProcTransport, TcpHub, TcpTransport, Transport, TransportError, Wire, WireStats,
};
use crate::{Party, Report, TransportKind};
use mpq_algebra::{Catalog, NodeId, SubjectId};
use mpq_core::authz::SubjectView;
use mpq_crypto::rsa::RsaPublic;
use mpq_exec::{effective_children, execute_step, node_ready_fused, ExecCtx, Table, WorkerPool};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One data message exchanged between parties while a query runs.
/// `Clone` because a delivery *attempt* may damage or duplicate the
/// message without consuming the sender's copy (see
/// [`crate::transport`]).
#[derive(Clone, Debug)]
pub(crate) enum Msg {
    /// The materialized table of `node`, produced by `from` and
    /// consumed by a node assigned to the receiving subject.
    Table {
        /// Node whose result this is.
        node: NodeId,
        /// Producing subject.
        from: SubjectId,
        /// Per-edge sequence number (receiver-side dedup).
        seq: u64,
        /// The result rows.
        table: Table,
    },
    /// The root result, delivered to the querying user.
    Result {
        /// Producing subject (the root's assignee).
        from: SubjectId,
        /// Per-edge sequence number (receiver-side dedup).
        seq: u64,
        /// The final table.
        table: Table,
    },
    /// A peer failed; stop without producing more traffic. Carries no
    /// sequence number: aborting twice is already idempotent.
    Abort,
}

impl Msg {
    /// Stamp the wire-assigned sequence number (no-op for `Abort`).
    pub(crate) fn set_seq(&mut self, n: u64) {
        match self {
            Msg::Table { seq, .. } | Msg::Result { seq, .. } => *seq = n,
            Msg::Abort => {}
        }
    }
}

/// Everything on a party's persistent mailbox.
pub(crate) enum PartyMsg {
    /// Wake up and execute your share of a query.
    Run {
        /// Query epoch (strictly increasing per session).
        epoch: u64,
        /// The shared, immutable description of the query.
        job: Arc<QueryJob>,
    },
    /// A data message belonging to query `epoch`.
    Data {
        /// Query epoch the message belongs to.
        epoch: u64,
        /// The payload.
        msg: Msg,
    },
    /// The session is closing; exit the thread.
    Shutdown,
}

/// Everything the parties need to execute one query — built by the
/// session's preparation phase (runtime authorization, incremental
/// Def. 6.1 provisioning, literal rewriting, envelope sealing) and
/// shared immutably by all participants.
pub(crate) struct QueryJob {
    /// Output of the shared preparation phase.
    pub(crate) prepared: Prepared,
    /// Node → executing subject.
    pub(crate) assignment: HashMap<NodeId, SubjectId>,
    /// Parent of each node of the executed plan (by node index).
    pub(crate) parents: Vec<Option<NodeId>>,
    /// Participating subjects (every assignee plus the querying user),
    /// ascending by subject id.
    pub(crate) participants: Vec<SubjectId>,
    /// The querying user.
    pub(crate) user: SubjectId,
    /// The user's RSA public key (envelope verification).
    pub(crate) user_public: RsaPublic,
    /// Worker pool for intra-operator data parallelism; all parties
    /// draw from this one budget, so concurrently executing parties do
    /// not oversubscribe the machine.
    pub(crate) pool: WorkerPool,
    /// How long a party waits for an expected data message before
    /// aborting the epoch with a typed
    /// [`TransportError::Timeout`] — `None` waits forever (the in-proc
    /// default, where a peer cannot die without the whole process
    /// dying).
    pub(crate) timeout: Option<Duration>,
}

/// What a party reports back to the coordinator for one epoch.
pub(crate) enum Outcome {
    /// Finished cleanly.
    Done(PartyOut),
    /// Failed with a real error (already broadcast `Abort`).
    Failed(SimError),
    /// Stopped because a peer aborted (or the session is closing).
    Aborted,
    /// The party loop panicked (a bug, not a protocol failure); the
    /// panic was caught so the session's other threads could finish,
    /// and is re-raised by the coordinator.
    Panicked(String),
}

/// A clean party's contribution to the run report.
pub(crate) struct PartyOut {
    /// Bytes received per (producer, me) edge.
    pub(crate) transfers: HashMap<(SubjectId, SubjectId), usize>,
    /// The final result (only ever `Some` at the user's party).
    pub(crate) result: Option<Table>,
}

/// Session-static context one party loop owns for its whole life.
/// Deliberately holds only *this* subject's material — an
/// [`mpq-server`](crate::remote) process builds one of these for the
/// single subject it hosts, with no other party's keys or store in
/// its address space.
pub(crate) struct PartyStatic {
    pub(crate) me: SubjectId,
    pub(crate) catalog: Arc<Catalog>,
    /// This subject's overall view (receive audits).
    pub(crate) view: SubjectView,
    /// This subject's keys and store.
    pub(crate) party: Arc<Party>,
}

/// The long-lived party threads of one session: a mailbox sender per
/// subject, a shared completion channel, and the join handles used for
/// clean teardown on drop. With [`TransportKind::Tcp`] every party
/// additionally owns a [`TcpHub`] (loopback listener) and data-plane
/// messages travel as framed records through real sockets; the control
/// plane (run/shutdown/outcomes) stays on in-process channels either
/// way.
pub(crate) struct PartyThreads {
    txs: Vec<Sender<PartyMsg>>,
    done_rx: Receiver<(SubjectId, u64, Outcome)>,
    handles: Vec<JoinHandle<()>>,
    epoch: u64,
    /// Keeps the TCP listeners alive for the threads' lifetime; dropped
    /// (and joined) after the party threads exit, so every in-flight
    /// frame either lands or sees a clean EOF.
    _hubs: Vec<TcpHub>,
}

impl PartyThreads {
    /// Spawn one party loop per subject. Threads idle on their
    /// mailboxes until [`PartyThreads::run`] wakes them with a query.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        catalog: &Arc<Catalog>,
        views: &Arc<Vec<SubjectView>>,
        parties: &[Arc<Party>],
        transport: TransportKind,
        seed: u64,
        faults: Arc<Mutex<FaultState>>,
        retry: RetryPolicy,
        stats: Arc<WireStats>,
    ) -> PartyThreads {
        let n = parties.len();
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        // One wire per party. In-proc: clones of everyone's mailbox
        // sender. TCP: every party binds a loopback hub feeding its own
        // mailbox, and sends connect to the peers' hubs. All wires
        // share one fault-injection state and one recovery-stats sink,
        // so a session-level schedule swap reaches every party.
        let mut hubs = Vec::new();
        let backends: Vec<Arc<dyn Transport>> = match transport {
            TransportKind::InProc => (0..n)
                .map(|_| Arc::new(InProcTransport::new(txs.clone())) as Arc<dyn Transport>)
                .collect(),
            TransportKind::Tcp => {
                for tx in &txs {
                    hubs.push(
                        TcpHub::bind("127.0.0.1:0", tx.clone(), None)
                            .expect("bind a loopback listener for the TCP transport"),
                    );
                }
                let peers: HashMap<SubjectId, String> = hubs
                    .iter()
                    .enumerate()
                    .map(|(j, hub)| (SubjectId::from_index(j), hub.addr().to_string()))
                    .collect();
                (0..n)
                    .map(|i| {
                        let mut peers = peers.clone();
                        peers.remove(&SubjectId::from_index(i));
                        Arc::new(TcpTransport::new(
                            SubjectId::from_index(i),
                            peers,
                            Duration::from_secs(5),
                        )) as Arc<dyn Transport>
                    })
                    .collect()
            }
        };
        let (done_tx, done_rx) = channel();
        let mut handles = Vec::with_capacity(n);
        for ((i, rx), backend) in rxs.into_iter().enumerate().zip(backends) {
            let me = SubjectId::from_index(i);
            let st = PartyStatic {
                me,
                catalog: Arc::clone(catalog),
                view: views[i].clone(),
                party: Arc::clone(&parties[i]),
            };
            let wire = Wire::new(
                me,
                seed,
                backend,
                Arc::clone(&faults),
                retry,
                Arc::clone(&stats),
            );
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || party_main(st, rx, wire, done)));
        }
        PartyThreads {
            txs,
            done_rx,
            handles,
            epoch: 0,
            _hubs: hubs,
        }
    }

    /// Run one prepared query across the persistent party threads and
    /// assemble the [`Report`]. Blocks until every participant reported
    /// an outcome for this epoch, so a failed query is fully drained
    /// before the next one starts.
    pub(crate) fn run(&mut self, job: QueryJob) -> Result<Report, SimError> {
        self.epoch += 1;
        let epoch = self.epoch;
        let participants = job.participants.clone();
        let request_bytes = job.prepared.transfers.clone();
        let requests = job.prepared.requests;
        let job = Arc::new(job);
        for &s in &participants {
            self.txs[s.index()]
                .send(PartyMsg::Run {
                    epoch,
                    job: Arc::clone(&job),
                })
                .expect("party thread alive for the session's lifetime");
        }

        let mut outcomes: HashMap<SubjectId, Outcome> = HashMap::new();
        while outcomes.len() < participants.len() {
            let (s, e, outcome) = self
                .done_rx
                .recv()
                .expect("party threads alive for the session's lifetime");
            if e == epoch {
                outcomes.insert(s, outcome);
            }
        }

        let mut transfers = request_bytes.clone();
        let mut result: Option<Table> = None;
        let mut first_error: Option<SimError> = None;
        let mut panic_msg: Option<String> = None;
        // Participant order (ascending subject id) keeps the reported
        // error deterministic when several parties fail independently.
        for s in &participants {
            match outcomes.remove(s).expect("one outcome per participant") {
                Outcome::Done(out) => {
                    for (edge, bytes) in out.transfers {
                        *transfers.entry(edge).or_default() += bytes;
                    }
                    if let Some(t) = out.result {
                        result = Some(t);
                    }
                }
                Outcome::Failed(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Outcome::Aborted => {}
                Outcome::Panicked(m) => {
                    if panic_msg.is_none() {
                        panic_msg = Some(m);
                    }
                }
            }
        }
        if let Some(m) = panic_msg {
            panic!("party thread panicked: {m}");
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(Report {
            result: result.expect("user party delivered the result"),
            transfers,
            request_bytes,
            requests,
        })
    }
}

impl Drop for PartyThreads {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(PartyMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Broadcast `Abort` for `epoch` to every other participant of the
/// query (ignoring peers that already exited or are unreachable — the
/// abort is best-effort and fault-exempt; unreachable peers time out
/// on their own).
pub(crate) fn broadcast_abort(wire: &Wire, epoch: u64, participants: &[SubjectId], me: SubjectId) {
    for &p in participants {
        if p != me {
            wire.send_abort(p, epoch);
        }
    }
}

/// Render a caught panic payload for re-raising at the coordinator.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The persistent per-subject loop: idle on the mailbox, run a query
/// when woken, stash early data messages for epochs not yet begun.
fn party_main(
    st: PartyStatic,
    rx: Receiver<PartyMsg>,
    wire: Wire,
    done: Sender<(SubjectId, u64, Outcome)>,
) {
    // Data that arrived while idle: either residue of an aborted query
    // (dropped when a later epoch begins) or messages racing ahead of
    // our own wake-up for their epoch (replayed when it begins).
    let mut stash: Vec<(u64, Msg)> = Vec::new();
    loop {
        match rx.recv() {
            Ok(PartyMsg::Run { epoch, job }) => {
                stash.retain(|(e, _)| *e >= epoch);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_query(&st, &job, epoch, &rx, &wire, &mut stash)
                }))
                .unwrap_or_else(|payload| {
                    broadcast_abort(&wire, epoch, &job.participants, st.me);
                    Outcome::Panicked(panic_text(payload))
                });
                if done.send((st.me, epoch, outcome)).is_err() {
                    return;
                }
            }
            Ok(PartyMsg::Data { epoch, msg }) => stash.push((epoch, msg)),
            Ok(PartyMsg::Shutdown) | Err(_) => return,
        }
    }
}

/// Execute this party's share of one query epoch: verify the signed
/// request envelopes addressed to us, then step every assigned node as
/// its operands materialize, routing outputs to their consumers.
///
/// Transport-agnostic: outputs leave through `wire` (in-proc mailbox
/// senders or framed TCP), inputs arrive on the party's own mailbox
/// `rx` whichever way they traveled. A send failure or a receive
/// timeout aborts the epoch with a typed
/// [`SimError::Transport`] instead of hanging.
pub(crate) fn run_query(
    st: &PartyStatic,
    job: &QueryJob,
    epoch: u64,
    rx: &Receiver<PartyMsg>,
    wire: &Wire,
    stash: &mut Vec<(u64, Msg)>,
) -> Outcome {
    let me = st.me;
    let plan = &job.prepared.exec_plan;
    let party = st.party.as_ref();
    let my_view = &st.view;
    let root = plan.root();

    // Nothing executes until every request envelope addressed to this
    // party has opened and verified: the signed request *is* the
    // authorization to compute (`[[q_S, keys]_priU]_pubS`), exactly as
    // the sequential path verifies all envelopes before stepping any
    // node.
    for (to, envelope, expected) in &job.prepared.envelopes {
        if *to != me {
            continue;
        }
        let opened = envelope.open(&party.rsa, &job.user_public);
        if opened.as_deref() != Some(expected.as_slice()) {
            broadcast_abort(wire, epoch, &job.participants, me);
            return Outcome::Failed(SimError::Envelope { to: me });
        }
    }

    // My assigned nodes, in global postorder. Footnote-2 fused
    // Encrypts never execute as standalone steps: their parent Select
    // (same assignee by construction) filters on the plaintext input
    // and encrypts only the survivors.
    let fused = &job.prepared.fused;
    let my_nodes: Vec<NodeId> = job
        .prepared
        .order
        .iter()
        .copied()
        .filter(|id| job.assignment[id] == me && !fused.contains(id))
        .collect();
    // External tables this party waits for: operands of its nodes
    // produced elsewhere (looking through fused Encrypts to the
    // plaintext inputs actually consumed), plus the root delivery when
    // it is the user and somebody else computes the root.
    let mut pending = my_nodes
        .iter()
        .flat_map(|&id| effective_children(plan, id, fused))
        .filter(|c| job.assignment[c] != me)
        .count();
    if me == job.user && job.assignment[&root] != me {
        pending += 1;
    }

    let mut transfers: HashMap<(SubjectId, SubjectId), usize> = HashMap::new();
    let mut results: HashMap<NodeId, Table> = HashMap::new();
    let mut executed: Vec<bool> = vec![false; my_nodes.len()];
    let mut result_table: Option<Table> = None;
    // Sequence numbers already consumed, per producing subject: a
    // sender recovering from an ambiguous delivery failure re-sends
    // the same `(from, seq)`, and the duplicate must not re-account
    // bytes or re-decrement `pending`.
    let mut seen: HashSet<(SubjectId, u64)> = HashSet::new();

    // Data messages for this epoch that arrived before our wake-up.
    let mut inbox: Vec<Msg> = Vec::new();
    for (e, m) in std::mem::take(stash) {
        match e.cmp(&epoch) {
            std::cmp::Ordering::Equal => inbox.push(m),
            std::cmp::Ordering::Greater => stash.push((e, m)),
            std::cmp::Ordering::Less => {}
        }
    }
    let mut inbox = inbox.into_iter();

    loop {
        // Step every node whose operands have materialized. A finished
        // node may unblock a later one of ours, so loop to fixpoint.
        let mut progress = true;
        while progress {
            progress = false;
            for (done, &id) in executed.iter_mut().zip(&my_nodes) {
                if *done || !node_ready_fused(plan, id, &results, fused) {
                    continue;
                }
                // Fresh per-node context, exactly as the sequential
                // interpreter builds one per step: ciphertexts come out
                // bit-identical no matter the interleaving.
                let exec_ctx = ExecCtx::builder(
                    &st.catalog,
                    &party.store,
                    &party.ring,
                    &job.prepared.schemes,
                    &job.prepared.key_of_attr,
                )
                .pool(job.pool.clone())
                .seed(job.prepared.exec_seed)
                .build();
                let table = match execute_step(plan, id, &mut results, &exec_ctx) {
                    Ok(t) => t,
                    Err(e) => {
                        broadcast_abort(wire, epoch, &job.participants, me);
                        return Outcome::Failed(e.into());
                    }
                };
                *done = true;
                progress = true;
                if id == root {
                    if me == job.user {
                        // Even a user-computed result is audited, as in
                        // the sequential path.
                        if let Err(e) = audit_transfer_with(&table, my_view, &job.pool) {
                            broadcast_abort(wire, epoch, &job.participants, me);
                            return Outcome::Failed(e);
                        }
                        result_table = Some(table);
                    } else if let Err(e) = wire.send(
                        job.user,
                        epoch,
                        Msg::Result {
                            from: me,
                            seq: 0,
                            table,
                        },
                    ) {
                        broadcast_abort(wire, epoch, &job.participants, me);
                        return Outcome::Failed(SimError::Transport(e));
                    }
                } else {
                    let parent = job.parents[id.index()].expect("non-root has a parent");
                    let consumer = job.assignment[&parent];
                    if consumer == me {
                        results.insert(id, table);
                    } else if let Err(e) = wire.send(
                        consumer,
                        epoch,
                        Msg::Table {
                            node: id,
                            from: me,
                            seq: 0,
                            table,
                        },
                    ) {
                        broadcast_abort(wire, epoch, &job.participants, me);
                        return Outcome::Failed(SimError::Transport(e));
                    }
                }
            }
        }

        let all_executed = executed.iter().all(|&d| d);
        let have_result = me != job.user || result_table.is_some();
        if all_executed && have_result && pending == 0 {
            return Outcome::Done(PartyOut {
                transfers,
                result: result_table,
            });
        }

        // Next data message: replayed from the stash first, then live.
        // A configured timeout bounds the wait, so a dead peer aborts
        // the epoch with a typed error instead of hanging the session.
        let msg = if let Some(m) = inbox.next() {
            m
        } else {
            let received = match job.timeout {
                Some(d) => match rx.recv_timeout(d) {
                    Ok(m) => Ok(m),
                    Err(RecvTimeoutError::Timeout) => {
                        broadcast_abort(wire, epoch, &job.participants, me);
                        return Outcome::Failed(SimError::Transport(TransportError::Timeout {
                            millis: d.as_millis() as u64,
                        }));
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(()),
                },
                None => rx.recv().map_err(|_| ()),
            };
            match received {
                Ok(PartyMsg::Data { epoch: e, msg }) => match e.cmp(&epoch) {
                    std::cmp::Ordering::Equal => msg,
                    // Residue of an earlier (aborted) query: drop.
                    std::cmp::Ordering::Less => continue,
                    // Racing ahead of the next epoch — impossible while
                    // we still owe an outcome for this one, but stashing
                    // is the safe response.
                    std::cmp::Ordering::Greater => {
                        stash.push((e, msg));
                        continue;
                    }
                },
                // The coordinator never overlaps queries; a Run here
                // would be a session-layer bug.
                Ok(PartyMsg::Run { .. }) => {
                    unreachable!("Run received while an epoch is still in flight")
                }
                Ok(PartyMsg::Shutdown) | Err(()) => return Outcome::Aborted,
            }
        };
        match msg {
            Msg::Table {
                node,
                from,
                seq,
                table,
            } => {
                // A re-sent duplicate (recovery after an ambiguous
                // delivery failure): the identical bytes were already
                // audited and accounted — drop it.
                if !seen.insert((from, seq)) {
                    continue;
                }
                // Audit on receive: the cell-level check runs at the
                // receiving party, before the table is usable.
                if let Err(e) = audit_transfer_with(&table, my_view, &job.pool) {
                    broadcast_abort(wire, epoch, &job.participants, me);
                    return Outcome::Failed(e);
                }
                *transfers.entry((from, me)).or_default() += table.byte_size();
                results.insert(node, table);
                pending -= 1;
            }
            Msg::Result { from, seq, table } => {
                if !seen.insert((from, seq)) {
                    continue;
                }
                if let Err(e) = audit_transfer_with(&table, my_view, &job.pool) {
                    broadcast_abort(wire, epoch, &job.participants, me);
                    return Outcome::Failed(e);
                }
                *transfers.entry((from, me)).or_default() += table.byte_size();
                result_table = Some(table);
                pending -= 1;
            }
            Msg::Abort => return Outcome::Aborted,
        }
    }
}
