//! The concurrent multi-party runtime: one OS thread per subject,
//! `mpsc` channels for the wire.
//!
//! This is the behavioral counterpart of the paper's §6 execution
//! story: "each subject executes its assigned sub-query and forwards
//! encrypted results". Every participating subject runs a *party
//! loop* on its own thread. The loop drains a mailbox of
//! messages — signed request envelopes from the querying user and
//! result tables from producing subjects — and steps a node of the
//! extended plan as soon as all of its operands are materialized
//! locally, so independent subtrees assigned to different subjects
//! execute concurrently (pipeline parallelism across providers).
//!
//! Guarantees relative to the sequential interpreter
//! ([`Simulator::run_sequential`](crate::Simulator::run_sequential)):
//!
//! * **result equivalence** — every node executes under a fresh
//!   per-node [`ExecCtx`] exactly as in the sequential path, so the
//!   produced tables (ciphertexts included) are bit-identical
//!   regardless of interleaving;
//! * **identical byte accounting** — tables are accounted on the same
//!   producer → consumer edges, by the receiving party; request
//!   envelopes are sealed (batched per subject-pair edge) before any
//!   thread starts, by the shared preparation phase;
//! * **audit on receive** — the cell-level
//!   [`audit_transfer_with`] check runs at
//!   the receiving party, on its own thread, before the table is used.
//!
//! Failure handling: a party that fails (audit violation, missing key,
//! envelope tampering) broadcasts an abort message to every peer and
//! returns its error; peers receiving `Abort` stop without an error of
//! their own. The coordinator returns the failing party's error,
//! picking the lowest subject id when several fail independently.

use crate::audit::audit_transfer_with;
use crate::error::SimError;
use crate::{Party, Prepared};
use mpq_algebra::{Catalog, NodeId, QueryPlan, SubjectId};
use mpq_core::authz::SubjectView;
use mpq_core::extend::ExtendedPlan;
use mpq_crypto::rsa::{RsaPublic, SignedEnvelope};
use mpq_exec::{execute_step, node_ready, ExecCtx, Table, WorkerPool};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};

/// One message on a party's mailbox.
pub(crate) enum Msg {
    /// A signed, batched sub-query request from the querying user
    /// (`[[q_S, keys]_priU]_pubS`), with the payload the recipient
    /// must recover for the envelope to verify.
    Request {
        /// The sealed envelope.
        envelope: SignedEnvelope,
        /// Payload the recipient expects after opening.
        expected: Vec<u8>,
    },
    /// The materialized table of `node`, produced by `from` and
    /// consumed by a node assigned to the receiving subject.
    Table {
        /// Node whose result this is.
        node: NodeId,
        /// Producing subject.
        from: SubjectId,
        /// The result rows.
        table: Table,
    },
    /// The root result, delivered to the querying user.
    Result {
        /// Producing subject (the root's assignee).
        from: SubjectId,
        /// The final table.
        table: Table,
    },
    /// A peer failed; stop without producing more traffic.
    Abort,
}

/// What a party reports back to the coordinator.
enum Outcome {
    /// Finished cleanly.
    Done(PartyOut),
    /// Failed with a real error (already broadcast `Abort`).
    Failed(SimError),
    /// Stopped because a peer aborted.
    Aborted,
}

/// A clean party's contribution to the run report.
struct PartyOut {
    /// Bytes received per (producer, me) edge.
    transfers: HashMap<(SubjectId, SubjectId), usize>,
    /// The final result (only ever `Some` at the user's party).
    result: Option<Table>,
}

/// Everything a party loop needs, borrowed from the coordinator.
struct PartyCtx<'a> {
    me: SubjectId,
    user: SubjectId,
    party: &'a Party,
    catalog: &'a Catalog,
    plan: &'a QueryPlan,
    views: &'a [SubjectView],
    assignment: &'a HashMap<NodeId, SubjectId>,
    prepared: &'a Prepared,
    parents: &'a [Option<NodeId>],
    /// My assigned nodes, in global postorder.
    my_nodes: Vec<NodeId>,
    /// Request envelopes I must open before anything else counts.
    expected_requests: usize,
    user_public: &'a RsaPublic,
    /// Worker pool shared by every party loop: intra-operator data
    /// parallelism draws from one thread budget, so concurrent parties
    /// do not oversubscribe the machine.
    pool: &'a WorkerPool,
}

impl PartyCtx<'_> {
    /// External tables this party waits for: operands of its nodes
    /// produced elsewhere, plus the root delivery when it is the user
    /// and somebody else computes the root.
    fn expected_tables(&self) -> usize {
        let mut n = self
            .my_nodes
            .iter()
            .flat_map(|&id| self.plan.node(id).children.iter())
            .filter(|c| self.assignment[c] != self.me)
            .count();
        let root = self.plan.root();
        if self.me == self.user && self.assignment[&root] != self.me {
            n += 1;
        }
        n
    }
}

/// Broadcast `Abort` to every peer (ignoring peers that already
/// exited).
fn abort_all(senders: &HashMap<SubjectId, Sender<Msg>>) {
    for tx in senders.values() {
        let _ = tx.send(Msg::Abort);
    }
}

/// The party loop: drain the mailbox, step every ready node, route
/// outputs to the consuming subjects.
fn party_loop(
    ctx: PartyCtx<'_>,
    rx: Receiver<Msg>,
    senders: HashMap<SubjectId, Sender<Msg>>,
) -> Outcome {
    let mut transfers: HashMap<(SubjectId, SubjectId), usize> = HashMap::new();
    let mut results: HashMap<NodeId, Table> = HashMap::new();
    let mut executed: Vec<bool> = vec![false; ctx.my_nodes.len()];
    let mut result_table: Option<Table> = None;
    let mut requests_pending = ctx.expected_requests;
    let mut pending = ctx.expected_requests + ctx.expected_tables();
    let root = ctx.plan.root();
    let my_view = &ctx.views[ctx.me.index()];

    loop {
        // Step every node whose operands have materialized. A finished
        // node may unblock a later one of ours, so loop to fixpoint.
        // Nothing executes until every request envelope addressed to
        // this party has opened and verified: the signed request *is*
        // the authorization to compute (`[[q_S, keys]_priU]_pubS`),
        // exactly as the sequential path verifies all envelopes before
        // stepping any node.
        let mut progress = requests_pending == 0;
        while progress {
            progress = false;
            for (done, &id) in executed.iter_mut().zip(&ctx.my_nodes) {
                if *done || !node_ready(ctx.plan, id, &results) {
                    continue;
                }
                // Fresh per-node context, exactly as the sequential
                // interpreter builds one per step: ciphertexts come out
                // bit-identical no matter the interleaving.
                let mut exec_ctx = ExecCtx::new(
                    ctx.catalog,
                    &ctx.party.store,
                    &ctx.party.ring,
                    &ctx.prepared.schemes,
                    &ctx.prepared.key_of_attr,
                )
                .with_pool(ctx.pool.clone());
                exec_ctx.seed = ctx.prepared.exec_seed;
                let table = match execute_step(ctx.plan, id, &mut results, &exec_ctx) {
                    Ok(t) => t,
                    Err(e) => {
                        abort_all(&senders);
                        return Outcome::Failed(e.into());
                    }
                };
                *done = true;
                progress = true;
                if id == root {
                    if ctx.me == ctx.user {
                        // Even a user-computed result is audited, as in
                        // the sequential path.
                        if let Err(e) = audit_transfer_with(&table, my_view, ctx.pool) {
                            abort_all(&senders);
                            return Outcome::Failed(e);
                        }
                        result_table = Some(table);
                    } else {
                        let _ = senders[&ctx.user].send(Msg::Result {
                            from: ctx.me,
                            table,
                        });
                    }
                } else {
                    let parent = ctx.parents[id.index()].expect("non-root has a parent");
                    let consumer = ctx.assignment[&parent];
                    if consumer == ctx.me {
                        results.insert(id, table);
                    } else {
                        let _ = senders[&consumer].send(Msg::Table {
                            node: id,
                            from: ctx.me,
                            table,
                        });
                    }
                }
            }
        }

        let all_executed = executed.iter().all(|&d| d);
        let have_result = ctx.me != ctx.user || result_table.is_some();
        if all_executed && have_result && pending == 0 {
            return Outcome::Done(PartyOut {
                transfers,
                result: result_table,
            });
        }

        match rx.recv() {
            Ok(Msg::Request { envelope, expected }) => {
                let opened = envelope.open(&ctx.party.rsa, ctx.user_public);
                if opened.as_deref() != Some(expected.as_slice()) {
                    abort_all(&senders);
                    return Outcome::Failed(SimError::Envelope { to: ctx.me });
                }
                requests_pending -= 1;
                pending -= 1;
            }
            Ok(Msg::Table { node, from, table }) => {
                // Audit on receive: the cell-level check runs at the
                // receiving party, before the table is usable.
                if let Err(e) = audit_transfer_with(&table, my_view, ctx.pool) {
                    abort_all(&senders);
                    return Outcome::Failed(e);
                }
                *transfers.entry((from, ctx.me)).or_default() += table.byte_size();
                results.insert(node, table);
                pending -= 1;
            }
            Ok(Msg::Result { from, table }) => {
                if let Err(e) = audit_transfer_with(&table, my_view, ctx.pool) {
                    abort_all(&senders);
                    return Outcome::Failed(e);
                }
                *transfers.entry((from, ctx.me)).or_default() += table.byte_size();
                result_table = Some(table);
                pending -= 1;
            }
            Ok(Msg::Abort) | Err(_) => return Outcome::Aborted,
        }
    }
}

/// Run the prepared plan across the parties, one thread per subject.
///
/// Called by [`Simulator::run`](crate::Simulator::run) after the
/// shared preparation phase (authorization re-check, Def. 6.1 key
/// provisioning, literal rewriting, envelope sealing) has succeeded.
#[allow(
    clippy::too_many_arguments,
    reason = "internal entry mirroring Simulator state"
)]
pub(crate) fn run_concurrent(
    catalog: &Catalog,
    parties: &[Party],
    ext: &ExtendedPlan,
    views: &[SubjectView],
    prepared: &Prepared,
    user: SubjectId,
    pool: &WorkerPool,
) -> Result<crate::Report, SimError> {
    let plan = &prepared.exec_plan;
    let parents = plan.parents();

    // Participants: every assignee, plus the querying user (who
    // receives the result even when assigned nothing).
    let mut is_participant = vec![false; parties.len()];
    for id in &prepared.order {
        is_participant[ext.assignment[id].index()] = true;
    }
    is_participant[user.index()] = true;
    let participants: Vec<SubjectId> = (0..parties.len())
        .map(SubjectId::from_index)
        .filter(|s| is_participant[s.index()])
        .collect();

    // One mailbox per participant.
    let mut txs: HashMap<SubjectId, Sender<Msg>> = HashMap::new();
    let mut rxs: HashMap<SubjectId, Receiver<Msg>> = HashMap::new();
    for &s in &participants {
        let (tx, rx) = channel();
        txs.insert(s, tx);
        rxs.insert(s, rx);
    }

    // The user's signed requests go on the wire first (batched per
    // subject-pair edge by the preparation phase).
    let mut expected_requests: HashMap<SubjectId, usize> = HashMap::new();
    for (to, envelope, expected) in &prepared.envelopes {
        txs[to]
            .send(Msg::Request {
                envelope: envelope.clone(),
                expected: expected.clone(),
            })
            .expect("recipient mailbox exists");
        *expected_requests.entry(*to).or_default() += 1;
    }

    let user_public = parties[user.index()].rsa.public.clone();
    let mut nodes_of: HashMap<SubjectId, Vec<NodeId>> = HashMap::new();
    for &id in &prepared.order {
        nodes_of.entry(ext.assignment[&id]).or_default().push(id);
    }

    let outcomes: Vec<(SubjectId, Outcome)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(participants.len());
        for &s in &participants {
            let rx = rxs.remove(&s).expect("one mailbox per participant");
            // Peers only — holding a sender to oneself would keep the
            // mailbox alive forever after a peer panic.
            let senders: HashMap<SubjectId, Sender<Msg>> = txs
                .iter()
                .filter(|(peer, _)| **peer != s)
                .map(|(peer, tx)| (*peer, tx.clone()))
                .collect();
            let ctx = PartyCtx {
                me: s,
                user,
                party: &parties[s.index()],
                catalog,
                plan,
                views,
                assignment: &ext.assignment,
                prepared,
                parents: &parents,
                my_nodes: nodes_of.remove(&s).unwrap_or_default(),
                expected_requests: expected_requests.get(&s).copied().unwrap_or(0),
                user_public: &user_public,
                pool,
            };
            handles.push((s, scope.spawn(move || party_loop(ctx, rx, senders))));
        }
        // The coordinator's own senders must drop before the join so a
        // crashed party disconnects its peers instead of hanging them.
        drop(txs);
        handles
            .into_iter()
            .map(|(s, h)| (s, h.join().expect("party thread panicked")))
            .collect()
    });

    let mut transfers = prepared.transfers.clone();
    let mut result: Option<Table> = None;
    let mut first_error: Option<SimError> = None;
    for (_, outcome) in outcomes {
        match outcome {
            Outcome::Done(out) => {
                for (edge, bytes) in out.transfers {
                    *transfers.entry(edge).or_default() += bytes;
                }
                if let Some(t) = out.result {
                    result = Some(t);
                }
            }
            Outcome::Failed(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Outcome::Aborted => {}
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(crate::Report {
        result: result.expect("user party delivered the result"),
        transfers,
        request_bytes: prepared.transfers.clone(),
        requests: prepared.requests,
    })
}
