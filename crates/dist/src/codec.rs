//! Hand-rolled binary wire codec for the TCP transport and the
//! `mpq-server` protocol.
//!
//! The build environment has no serde, so every frame that crosses a
//! socket is encoded here explicitly: big-endian integers, `u32`
//! length-prefixed byte strings, tag bytes for enums. Two invariants
//! matter:
//!
//! * **cells are length-prefixed** — [`Value::canonical_bytes`] is
//!   self-describing but *not* self-delimiting (`Str`/`Enc` consume
//!   the rest of the buffer), so every cell travels behind its own
//!   length;
//! * **plans round-trip with identical `NodeId`s** — [`QueryPlan`]
//!   construction is append-only (children precede parents), so
//!   re-`add`ing nodes in index order reproduces the arena exactly,
//!   which the assignment and key maps rely on.
//!
//! Decoding is total: every `decode_*` returns `Option`, and a
//! malformed frame surfaces as a typed
//! [`TransportError::Frame`](crate::transport::TransportError) at the
//! transport layer, never a panic in a party loop.

use crate::runtime::Msg;
use mpq_algebra::expr::{AggExpr, AggFunc, ArithOp, CmpOp, DateField, Expr};
use mpq_algebra::plan::{JoinKind, Operator, QueryPlan};
use mpq_algebra::value::EncScheme;
use mpq_algebra::{AttrId, NodeId, RelId, SubjectId, Value};
use mpq_crypto::bignum::BigUint;
use mpq_crypto::rsa::{RsaPublic, SignedEnvelope};
use mpq_exec::{Batch, ColumnVec, SchemePlan, Table, TableSchema};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Primitive writers / reader
// ---------------------------------------------------------------------------

fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}

fn put_bool(b: &mut Vec<u8>, v: bool) {
    b.push(u8::from(v));
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(b: &mut Vec<u8>, v: &[u8]) {
    put_u32(b, v.len() as u32);
    b.extend_from_slice(v);
}

fn put_str(b: &mut Vec<u8>, v: &str) {
    put_bytes(b, v.as_bytes());
}

/// Cursor over a received frame; every accessor is bounds-checked.
struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(b: &'a [u8]) -> Reader<'a> {
        Reader { b, at: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.b.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn bool(&mut self) -> Option<bool> {
        Some(self.u8()? != 0)
    }

    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_be_bytes(self.b.get(self.at..self.at + 4)?.try_into().ok()?);
        self.at += 4;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_be_bytes(self.b.get(self.at..self.at + 8)?.try_into().ok()?);
        self.at += 8;
        Some(v)
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let v = self.b.get(self.at..self.at + len)?;
        self.at += len;
        Some(v)
    }

    fn str(&mut self) -> Option<String> {
        Some(std::str::from_utf8(self.bytes()?).ok()?.to_string())
    }

    /// The whole input must be consumed — trailing garbage is a
    /// malformed frame, not padding.
    fn finish(self) -> Option<()> {
        (self.at == self.b.len()).then_some(())
    }
}

// ---------------------------------------------------------------------------
// Values and tables
// ---------------------------------------------------------------------------

fn put_value(b: &mut Vec<u8>, v: &Value) {
    put_bytes(b, &v.canonical_bytes());
}

fn get_value(r: &mut Reader) -> Option<Value> {
    Value::from_canonical_bytes(r.bytes()?)
}

/// Tables travel column-major (all of column 0, then column 1, …),
/// matching the columnar in-memory layout so neither end transposes.
/// Every cell is still individually length-prefixed, so the frame size
/// is byte-identical to the old row-major encoding.
fn put_table(b: &mut Vec<u8>, t: &Table) {
    put_u32(b, t.attrs().len() as u32);
    for a in t.attrs() {
        put_u32(b, a.0);
    }
    put_u32(b, t.len() as u32);
    for col in t.columns() {
        for i in 0..col.len() {
            put_value(b, &col.get(i));
        }
    }
}

fn get_table(r: &mut Reader) -> Option<Table> {
    let ncols = r.u32()? as usize;
    let mut attrs = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        attrs.push(AttrId(r.u32()?));
    }
    let nrows = r.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let mut col = ColumnVec::with_capacity(nrows);
        for _ in 0..nrows {
            col.push(get_value(r)?);
        }
        cols.push(col);
    }
    Some(Table::from_batch(Batch::new(TableSchema::new(attrs), cols)))
}

// ---------------------------------------------------------------------------
// Expressions and plans
// ---------------------------------------------------------------------------

fn put_expr(b: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Col(a) => {
            put_u8(b, 0);
            put_u32(b, a.0);
        }
        Expr::AggRef(i) => {
            put_u8(b, 1);
            put_u64(b, *i as u64);
        }
        Expr::Lit(v) => {
            put_u8(b, 2);
            put_value(b, v);
        }
        Expr::Cmp(l, op, r) => {
            put_u8(b, 3);
            put_expr(b, l);
            put_u8(b, cmp_tag(*op));
            put_expr(b, r);
        }
        Expr::And(es) => {
            put_u8(b, 4);
            put_u32(b, es.len() as u32);
            for e in es {
                put_expr(b, e);
            }
        }
        Expr::Or(es) => {
            put_u8(b, 5);
            put_u32(b, es.len() as u32);
            for e in es {
                put_expr(b, e);
            }
        }
        Expr::Not(e) => {
            put_u8(b, 6);
            put_expr(b, e);
        }
        Expr::Arith(l, op, r) => {
            put_u8(b, 7);
            put_expr(b, l);
            put_u8(
                b,
                match op {
                    ArithOp::Add => 0,
                    ArithOp::Sub => 1,
                    ArithOp::Mul => 2,
                    ArithOp::Div => 3,
                },
            );
            put_expr(b, r);
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            put_u8(b, 8);
            put_expr(b, expr);
            put_str(b, pattern);
            put_bool(b, *negated);
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            put_u8(b, 9);
            put_expr(b, expr);
            put_expr(b, lo);
            put_expr(b, hi);
            put_bool(b, *negated);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            put_u8(b, 10);
            put_expr(b, expr);
            put_u32(b, list.len() as u32);
            for v in list {
                put_value(b, v);
            }
            put_bool(b, *negated);
        }
        Expr::Case { branches, else_ } => {
            put_u8(b, 11);
            put_u32(b, branches.len() as u32);
            for (w, t) in branches {
                put_expr(b, w);
                put_expr(b, t);
            }
            match else_ {
                Some(e) => {
                    put_bool(b, true);
                    put_expr(b, e);
                }
                None => put_bool(b, false),
            }
        }
        Expr::IsNull { expr, negated } => {
            put_u8(b, 12);
            put_expr(b, expr);
            put_bool(b, *negated);
        }
        Expr::Extract { field, expr } => {
            put_u8(b, 13);
            put_u8(
                b,
                match field {
                    DateField::Year => 0,
                },
            );
            put_expr(b, expr);
        }
        Expr::Substring { expr, start, len } => {
            put_u8(b, 14);
            put_expr(b, expr);
            put_u64(b, *start as u64);
            put_u64(b, *len as u64);
        }
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn get_cmp(tag: u8) -> Option<CmpOp> {
    Some(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return None,
    })
}

fn get_expr(r: &mut Reader) -> Option<Expr> {
    Some(match r.u8()? {
        0 => Expr::Col(AttrId(r.u32()?)),
        1 => Expr::AggRef(r.u64()? as usize),
        2 => Expr::Lit(get_value(r)?),
        3 => {
            let l = get_expr(r)?;
            let op = get_cmp(r.u8()?)?;
            let rhs = get_expr(r)?;
            Expr::Cmp(Box::new(l), op, Box::new(rhs))
        }
        4 => {
            let n = r.u32()? as usize;
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                es.push(get_expr(r)?);
            }
            Expr::And(es)
        }
        5 => {
            let n = r.u32()? as usize;
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                es.push(get_expr(r)?);
            }
            Expr::Or(es)
        }
        6 => Expr::Not(Box::new(get_expr(r)?)),
        7 => {
            let l = get_expr(r)?;
            let op = match r.u8()? {
                0 => ArithOp::Add,
                1 => ArithOp::Sub,
                2 => ArithOp::Mul,
                3 => ArithOp::Div,
                _ => return None,
            };
            let rhs = get_expr(r)?;
            Expr::Arith(Box::new(l), op, Box::new(rhs))
        }
        8 => Expr::Like {
            expr: Box::new(get_expr(r)?),
            pattern: r.str()?,
            negated: r.bool()?,
        },
        9 => Expr::Between {
            expr: Box::new(get_expr(r)?),
            lo: Box::new(get_expr(r)?),
            hi: Box::new(get_expr(r)?),
            negated: r.bool()?,
        },
        10 => {
            let expr = Box::new(get_expr(r)?);
            let n = r.u32()? as usize;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(get_value(r)?);
            }
            Expr::InList {
                expr,
                list,
                negated: r.bool()?,
            }
        }
        11 => {
            let n = r.u32()? as usize;
            let mut branches = Vec::with_capacity(n);
            for _ in 0..n {
                let w = get_expr(r)?;
                let t = get_expr(r)?;
                branches.push((w, t));
            }
            let else_ = if r.bool()? {
                Some(Box::new(get_expr(r)?))
            } else {
                None
            };
            Expr::Case { branches, else_ }
        }
        12 => Expr::IsNull {
            expr: Box::new(get_expr(r)?),
            negated: r.bool()?,
        },
        13 => {
            let field = match r.u8()? {
                0 => DateField::Year,
                _ => return None,
            };
            Expr::Extract {
                field,
                expr: Box::new(get_expr(r)?),
            }
        }
        14 => Expr::Substring {
            expr: Box::new(get_expr(r)?),
            start: r.u64()? as usize,
            len: r.u64()? as usize,
        },
        _ => return None,
    })
}

fn put_attrs(b: &mut Vec<u8>, attrs: &[AttrId]) {
    put_u32(b, attrs.len() as u32);
    for a in attrs {
        put_u32(b, a.0);
    }
}

fn get_attrs(r: &mut Reader) -> Option<Vec<AttrId>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(AttrId(r.u32()?));
    }
    Some(out)
}

fn put_op(b: &mut Vec<u8>, op: &Operator) {
    match op {
        Operator::Base { rel, attrs } => {
            put_u8(b, 0);
            put_u32(b, rel.0);
            put_attrs(b, attrs);
        }
        Operator::Project { attrs } => {
            put_u8(b, 1);
            put_attrs(b, attrs);
        }
        Operator::Select { pred } => {
            put_u8(b, 2);
            put_expr(b, pred);
        }
        Operator::Product => put_u8(b, 3),
        Operator::Join { kind, on, residual } => {
            put_u8(b, 4);
            put_u8(
                b,
                match kind {
                    JoinKind::Inner => 0,
                    JoinKind::LeftOuter => 1,
                    JoinKind::Semi => 2,
                    JoinKind::Anti => 3,
                },
            );
            put_u32(b, on.len() as u32);
            for (l, op, r) in on {
                put_u32(b, l.0);
                put_u8(b, cmp_tag(*op));
                put_u32(b, r.0);
            }
            match residual {
                Some(e) => {
                    put_bool(b, true);
                    put_expr(b, e);
                }
                None => put_bool(b, false),
            }
        }
        Operator::GroupBy { keys, aggs } => {
            put_u8(b, 5);
            put_attrs(b, keys);
            put_u32(b, aggs.len() as u32);
            for a in aggs {
                put_u8(
                    b,
                    match a.func {
                        AggFunc::Count => 0,
                        AggFunc::CountDistinct => 1,
                        AggFunc::Sum => 2,
                        AggFunc::Avg => 3,
                        AggFunc::Min => 4,
                        AggFunc::Max => 5,
                    },
                );
                put_expr(b, &a.input);
                put_u32(b, a.output.0);
            }
        }
        Operator::Having { pred } => {
            put_u8(b, 6);
            put_expr(b, pred);
        }
        Operator::Udf {
            name,
            inputs,
            output,
            body,
        } => {
            put_u8(b, 7);
            put_str(b, name);
            put_attrs(b, inputs);
            put_u32(b, output.0);
            match body {
                Some(e) => {
                    put_bool(b, true);
                    put_expr(b, e);
                }
                None => put_bool(b, false),
            }
        }
        Operator::Encrypt { attrs } => {
            put_u8(b, 8);
            put_attrs(b, attrs);
        }
        Operator::Decrypt { attrs } => {
            put_u8(b, 9);
            put_attrs(b, attrs);
        }
        Operator::Sort { keys } => {
            put_u8(b, 10);
            put_u32(b, keys.len() as u32);
            for (e, asc) in keys {
                put_expr(b, e);
                put_bool(b, *asc);
            }
        }
        Operator::Limit { n } => {
            put_u8(b, 11);
            put_u64(b, *n);
        }
    }
}

fn get_op(r: &mut Reader) -> Option<Operator> {
    Some(match r.u8()? {
        0 => Operator::Base {
            rel: RelId(r.u32()?),
            attrs: get_attrs(r)?,
        },
        1 => Operator::Project {
            attrs: get_attrs(r)?,
        },
        2 => Operator::Select { pred: get_expr(r)? },
        3 => Operator::Product,
        4 => {
            let kind = match r.u8()? {
                0 => JoinKind::Inner,
                1 => JoinKind::LeftOuter,
                2 => JoinKind::Semi,
                3 => JoinKind::Anti,
                _ => return None,
            };
            let n = r.u32()? as usize;
            let mut on = Vec::with_capacity(n);
            for _ in 0..n {
                let l = AttrId(r.u32()?);
                let op = get_cmp(r.u8()?)?;
                let rhs = AttrId(r.u32()?);
                on.push((l, op, rhs));
            }
            let residual = if r.bool()? { Some(get_expr(r)?) } else { None };
            Operator::Join { kind, on, residual }
        }
        5 => {
            let keys = get_attrs(r)?;
            let n = r.u32()? as usize;
            let mut aggs = Vec::with_capacity(n);
            for _ in 0..n {
                let func = match r.u8()? {
                    0 => AggFunc::Count,
                    1 => AggFunc::CountDistinct,
                    2 => AggFunc::Sum,
                    3 => AggFunc::Avg,
                    4 => AggFunc::Min,
                    5 => AggFunc::Max,
                    _ => return None,
                };
                let input = get_expr(r)?;
                let output = AttrId(r.u32()?);
                aggs.push(AggExpr {
                    func,
                    input,
                    output,
                });
            }
            Operator::GroupBy { keys, aggs }
        }
        6 => Operator::Having { pred: get_expr(r)? },
        7 => {
            let name = r.str()?;
            let inputs = get_attrs(r)?;
            let output = AttrId(r.u32()?);
            let body = if r.bool()? { Some(get_expr(r)?) } else { None };
            Operator::Udf {
                name,
                inputs,
                output,
                body,
            }
        }
        8 => Operator::Encrypt {
            attrs: get_attrs(r)?,
        },
        9 => Operator::Decrypt {
            attrs: get_attrs(r)?,
        },
        10 => {
            let n = r.u32()? as usize;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                let e = get_expr(r)?;
                let asc = r.bool()?;
                keys.push((e, asc));
            }
            Operator::Sort { keys }
        }
        11 => Operator::Limit { n: r.u64()? },
        _ => return None,
    })
}

fn put_plan(b: &mut Vec<u8>, plan: &QueryPlan) {
    let order: Vec<NodeId> = (0..plan.len()).map(NodeId::from_index).collect();
    put_u32(b, order.len() as u32);
    for id in order {
        let node = plan.node(id);
        put_u32(b, node.children.len() as u32);
        for c in &node.children {
            put_u32(b, c.0);
        }
        put_op(b, &node.op);
    }
    put_u32(b, plan.root().0);
}

fn get_plan(r: &mut Reader) -> Option<QueryPlan> {
    let n = r.u32()? as usize;
    if n == 0 {
        return None;
    }
    let mut plan = QueryPlan::new();
    // Child edges can point *forward*: `splice_above` appends the
    // spliced node at the end of the arena and re-targets an earlier
    // parent's edge at it, so extended plans are not in child-first
    // order. Any in-bounds index is accepted here; tree-shape is
    // validated below.
    let mut child_uses = vec![0u32; n];
    for expect in 0..n {
        let nc = r.u32()? as usize;
        let mut children = Vec::with_capacity(nc.min(64));
        for _ in 0..nc {
            let c = NodeId(r.u32()?);
            if c.index() >= n {
                return None;
            }
            child_uses[c.index()] += 1;
            children.push(c);
        }
        let op = get_op(r)?;
        if op.arity() != children.len() {
            return None;
        }
        let id = plan.add(op, children);
        if id.index() != expect {
            return None;
        }
    }
    let root = NodeId(r.u32()?);
    if root.index() >= n {
        return None;
    }
    plan.set_root(root);
    // Plans are trees: every node is some parent's child at most once
    // (sharing would double-execute under postorder)…
    if child_uses.iter().any(|&uses| uses > 1) {
        return None;
    }
    // …and the reachable region is acyclic — a cyclic frame must not
    // hang the receiver's postorder walk. Tri-state DFS from the root.
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in progress, 2 = done
    let mut stack = vec![(root, 0usize)];
    while let Some((id, cursor)) = stack.pop() {
        if cursor == 0 {
            match state[id.index()] {
                1 => return None,
                2 => continue,
                _ => state[id.index()] = 1,
            }
        }
        let kids = &plan.node(id).children;
        if cursor < kids.len() {
            stack.push((id, cursor + 1));
            let c = kids[cursor];
            match state[c.index()] {
                1 => return None,
                2 => {}
                _ => stack.push((c, 0)),
            }
        } else {
            state[id.index()] = 2;
        }
    }
    Some(plan)
}

// ---------------------------------------------------------------------------
// Envelopes and keys
// ---------------------------------------------------------------------------

fn put_envelope(b: &mut Vec<u8>, e: &SignedEnvelope) {
    put_bytes(b, &e.wrapped_key);
    put_bytes(b, &e.body);
    put_bytes(b, &e.signature);
}

fn get_envelope(r: &mut Reader) -> Option<SignedEnvelope> {
    Some(SignedEnvelope {
        wrapped_key: r.bytes()?.to_vec(),
        body: r.bytes()?.to_vec(),
        signature: r.bytes()?.to_vec(),
    })
}

fn put_rsa_public(b: &mut Vec<u8>, p: &RsaPublic) {
    put_bytes(b, &p.n.to_bytes_be());
    put_bytes(b, &p.e.to_bytes_be());
}

fn get_rsa_public(r: &mut Reader) -> Option<RsaPublic> {
    Some(RsaPublic {
        n: BigUint::from_bytes_be(r.bytes()?),
        e: BigUint::from_bytes_be(r.bytes()?),
    })
}

// ---------------------------------------------------------------------------
// Remote jobs
// ---------------------------------------------------------------------------

/// Everything a remote party needs to execute its share of one query —
/// the wire projection of the session's `QueryJob`. The client does
/// all planning; servers re-derive order/parents from the plan and
/// never see each other's request envelopes or any private RSA key.
#[derive(Clone, Debug)]
pub(crate) struct RemoteJob {
    /// The executable extended plan.
    pub(crate) plan: QueryPlan,
    /// Per-attribute encryption schemes.
    pub(crate) schemes: SchemePlan,
    /// Attribute → Def. 6.1 cluster-key id.
    pub(crate) key_of_attr: HashMap<AttrId, u32>,
    /// Node → executing subject, total over the plan.
    pub(crate) assignment: HashMap<NodeId, SubjectId>,
    /// Participating subjects, ascending.
    pub(crate) participants: Vec<SubjectId>,
    /// The querying user.
    pub(crate) user: SubjectId,
    /// Seed for per-(node, column, row) encryption randomness.
    pub(crate) exec_seed: u64,
    /// Receive timeout in milliseconds (0 = wait forever).
    pub(crate) timeout_ms: u64,
}

fn put_remote_job(b: &mut Vec<u8>, j: &RemoteJob) {
    put_plan(b, &j.plan);
    let mut schemes: Vec<(AttrId, EncScheme)> = j.schemes.iter().collect();
    schemes.sort_by_key(|(a, _)| a.0);
    put_u32(b, schemes.len() as u32);
    for (a, s) in schemes {
        put_u32(b, a.0);
        put_u8(
            b,
            match s {
                EncScheme::Random => 0,
                EncScheme::Deterministic => 1,
                EncScheme::Ope => 2,
                EncScheme::Paillier => 3,
            },
        );
    }
    let mut koa: Vec<(AttrId, u32)> = j.key_of_attr.iter().map(|(a, k)| (*a, *k)).collect();
    koa.sort_by_key(|(a, _)| a.0);
    put_u32(b, koa.len() as u32);
    for (a, k) in koa {
        put_u32(b, a.0);
        put_u32(b, k);
    }
    let mut assignment: Vec<(NodeId, SubjectId)> =
        j.assignment.iter().map(|(n, s)| (*n, *s)).collect();
    assignment.sort_by_key(|(n, _)| n.0);
    put_u32(b, assignment.len() as u32);
    for (n, s) in assignment {
        put_u32(b, n.0);
        put_u32(b, s.0);
    }
    put_u32(b, j.participants.len() as u32);
    for s in &j.participants {
        put_u32(b, s.0);
    }
    put_u32(b, j.user.0);
    put_u64(b, j.exec_seed);
    put_u64(b, j.timeout_ms);
}

fn get_remote_job(r: &mut Reader) -> Option<RemoteJob> {
    let plan = get_plan(r)?;
    let n = r.u32()? as usize;
    let mut schemes = SchemePlan::default();
    for _ in 0..n {
        let a = AttrId(r.u32()?);
        let s = match r.u8()? {
            0 => EncScheme::Random,
            1 => EncScheme::Deterministic,
            2 => EncScheme::Ope,
            3 => EncScheme::Paillier,
            _ => return None,
        };
        schemes.set(a, s);
    }
    let n = r.u32()? as usize;
    let mut key_of_attr = HashMap::with_capacity(n);
    for _ in 0..n {
        let a = AttrId(r.u32()?);
        let k = r.u32()?;
        key_of_attr.insert(a, k);
    }
    let n = r.u32()? as usize;
    let mut assignment = HashMap::with_capacity(n);
    for _ in 0..n {
        let node = NodeId(r.u32()?);
        let s = SubjectId(r.u32()?);
        assignment.insert(node, s);
    }
    let n = r.u32()? as usize;
    let mut participants = Vec::with_capacity(n);
    for _ in 0..n {
        participants.push(SubjectId(r.u32()?));
    }
    Some(RemoteJob {
        plan,
        schemes,
        key_of_attr,
        assignment,
        participants,
        user: SubjectId(r.u32()?),
        exec_seed: r.u64()?,
        timeout_ms: r.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Every message the TCP transport and the `mpq-server` protocol
/// exchange, one tag byte each. `Peer`/`Data` are the data plane
/// (party ↔ party); the rest is the coordinator's control plane.
//
// Variant sizes are deliberately lopsided: frames are built,
// serialized, and dropped — the only retained copies are the handful
// of recovery frames (pending `Execute`s, cached outcomes) — so
// boxing the big control-plane payloads would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub(crate) enum Frame {
    /// First frame on a data connection: who is talking.
    Peer {
        /// The connecting subject.
        from: SubjectId,
    },
    /// A data-plane message of query `epoch`.
    Data {
        /// Query epoch the message belongs to.
        epoch: u64,
        /// The payload.
        msg: Msg,
    },
    /// First frame on a control connection (coordinator → server).
    Hello {
        /// The querying user the coordinator speaks for.
        user: SubjectId,
        /// The user's RSA public key (request-envelope verification).
        public: RsaPublic,
    },
    /// Control handshake response (server → coordinator).
    HelloAck {
        /// The subject this server hosts.
        me: SubjectId,
        /// Its RSA public key (request envelopes are sealed to it).
        public: RsaPublic,
    },
    /// Def. 6.1 full-key provisioning: the sealed
    /// `[[ClusterKey]_priU]_pubS` envelope for this holder.
    Provision {
        /// Envelope whose payload is [`ClusterKey::to_bytes`].
        envelope: SignedEnvelope,
    },
    /// Def. 6.1 public-half provisioning: the Paillier public modulus
    /// for computing non-holders (public material, travels in clear).
    ProvisionPublic {
        /// Cluster-key id.
        id: u32,
        /// Paillier modulus `n`, big-endian.
        n: Vec<u8>,
    },
    /// Execute your share of query `epoch`.
    Execute {
        /// Query epoch.
        epoch: u64,
        /// The wire projection of the query job.
        job: RemoteJob,
        /// This recipient's signed request envelope (absent only for
        /// the user's own party, which needs no self-request).
        envelope: Option<SignedEnvelope>,
    },
    /// A party finished its share cleanly (server → coordinator).
    Done {
        /// Query epoch.
        epoch: u64,
        /// Bytes received per (producer, me) edge.
        transfers: Vec<(SubjectId, SubjectId, u64)>,
    },
    /// A party failed its share (server → coordinator).
    Failed {
        /// Query epoch.
        epoch: u64,
        /// Display rendering of the party's `SimError`.
        message: String,
    },
    /// The coordinator is done with this server; exit cleanly.
    Shutdown,
}

/// Encode a frame body (the transport adds the `u32` length prefix).
pub(crate) fn encode_frame(f: &Frame) -> Vec<u8> {
    let mut b = Vec::new();
    match f {
        Frame::Peer { from } => {
            put_u8(&mut b, 0);
            put_u32(&mut b, from.0);
        }
        Frame::Data { epoch, msg } => {
            put_u8(&mut b, 1);
            put_u64(&mut b, *epoch);
            match msg {
                Msg::Table {
                    node,
                    from,
                    seq,
                    table,
                } => {
                    put_u8(&mut b, 0);
                    put_u32(&mut b, node.0);
                    put_u32(&mut b, from.0);
                    put_u64(&mut b, *seq);
                    put_table(&mut b, table);
                }
                Msg::Result { from, seq, table } => {
                    put_u8(&mut b, 1);
                    put_u32(&mut b, from.0);
                    put_u64(&mut b, *seq);
                    put_table(&mut b, table);
                }
                Msg::Abort => put_u8(&mut b, 2),
            }
        }
        Frame::Hello { user, public } => {
            put_u8(&mut b, 2);
            put_u32(&mut b, user.0);
            put_rsa_public(&mut b, public);
        }
        Frame::HelloAck { me, public } => {
            put_u8(&mut b, 3);
            put_u32(&mut b, me.0);
            put_rsa_public(&mut b, public);
        }
        Frame::Provision { envelope } => {
            put_u8(&mut b, 4);
            put_envelope(&mut b, envelope);
        }
        Frame::ProvisionPublic { id, n } => {
            put_u8(&mut b, 5);
            put_u32(&mut b, *id);
            put_bytes(&mut b, n);
        }
        Frame::Execute {
            epoch,
            job,
            envelope,
        } => {
            put_u8(&mut b, 6);
            put_u64(&mut b, *epoch);
            put_remote_job(&mut b, job);
            match envelope {
                Some(e) => {
                    put_bool(&mut b, true);
                    put_envelope(&mut b, e);
                }
                None => put_bool(&mut b, false),
            }
        }
        Frame::Done { epoch, transfers } => {
            put_u8(&mut b, 7);
            put_u64(&mut b, *epoch);
            put_u32(&mut b, transfers.len() as u32);
            for (f, t, bytes) in transfers {
                put_u32(&mut b, f.0);
                put_u32(&mut b, t.0);
                put_u64(&mut b, *bytes);
            }
        }
        Frame::Failed { epoch, message } => {
            put_u8(&mut b, 8);
            put_u64(&mut b, *epoch);
            put_str(&mut b, message);
        }
        Frame::Shutdown => put_u8(&mut b, 9),
    }
    b
}

/// Decode a frame body (`None` on any malformation, including
/// trailing bytes).
pub(crate) fn decode_frame(bytes: &[u8]) -> Option<Frame> {
    let mut r = Reader::new(bytes);
    let frame = match r.u8()? {
        0 => Frame::Peer {
            from: SubjectId(r.u32()?),
        },
        1 => {
            let epoch = r.u64()?;
            let msg = match r.u8()? {
                0 => Msg::Table {
                    node: NodeId(r.u32()?),
                    from: SubjectId(r.u32()?),
                    seq: r.u64()?,
                    table: get_table(&mut r)?,
                },
                1 => Msg::Result {
                    from: SubjectId(r.u32()?),
                    seq: r.u64()?,
                    table: get_table(&mut r)?,
                },
                2 => Msg::Abort,
                _ => return None,
            };
            Frame::Data { epoch, msg }
        }
        2 => Frame::Hello {
            user: SubjectId(r.u32()?),
            public: get_rsa_public(&mut r)?,
        },
        3 => Frame::HelloAck {
            me: SubjectId(r.u32()?),
            public: get_rsa_public(&mut r)?,
        },
        4 => Frame::Provision {
            envelope: get_envelope(&mut r)?,
        },
        5 => Frame::ProvisionPublic {
            id: r.u32()?,
            n: r.bytes()?.to_vec(),
        },
        6 => {
            let epoch = r.u64()?;
            let job = get_remote_job(&mut r)?;
            let envelope = if r.bool()? {
                Some(get_envelope(&mut r)?)
            } else {
                None
            };
            Frame::Execute {
                epoch,
                job,
                envelope,
            }
        }
        7 => {
            let epoch = r.u64()?;
            let n = r.u32()? as usize;
            let mut transfers = Vec::with_capacity(n);
            for _ in 0..n {
                let f = SubjectId(r.u32()?);
                let t = SubjectId(r.u32()?);
                let bytes = r.u64()?;
                transfers.push((f, t, bytes));
            }
            Frame::Done { epoch, transfers }
        }
        8 => Frame::Failed {
            epoch: r.u64()?,
            message: r.str()?,
        },
        9 => Frame::Shutdown,
        _ => return None,
    };
    r.finish()?;
    Some(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_algebra::Date;

    fn roundtrip(f: &Frame) -> Frame {
        decode_frame(&encode_frame(f)).expect("frame decodes")
    }

    #[test]
    fn values_and_tables_roundtrip() {
        let table = Table::from_rows(
            vec![AttrId(3), AttrId(7)],
            vec![
                vec![
                    Value::str("alice"),
                    Value::Date(Date::parse("1970-01-01").expect("valid date")),
                ],
                vec![Value::Null, Value::Num(1.5)],
            ],
        );
        let f = roundtrip(&Frame::Data {
            epoch: 42,
            msg: Msg::Table {
                node: NodeId(5),
                from: SubjectId(2),
                seq: 77,
                table: table.clone(),
            },
        });
        match f {
            Frame::Data {
                epoch: 42,
                msg:
                    Msg::Table {
                        node,
                        from,
                        seq,
                        table: t,
                    },
            } => {
                assert_eq!(node, NodeId(5));
                assert_eq!(from, SubjectId(2));
                assert_eq!(seq, 77);
                assert_eq!(t.attrs(), table.attrs());
                assert_eq!(t.to_rows(), table.to_rows());
                assert_eq!(t.byte_size(), table.byte_size());
            }
            _ => panic!("wrong frame"),
        }
    }

    #[test]
    fn plans_roundtrip_with_identical_node_ids() {
        use mpq_core::fixtures::RunningExample;
        let ex = RunningExample::new();
        for plan in [&ex.plan, &ex.fig7a_extended().plan] {
            let mut b = Vec::new();
            put_plan(&mut b, plan);
            let back = get_plan(&mut Reader::new(&b)).expect("plan decodes");
            assert_eq!(back.len(), plan.len());
            assert_eq!(back.root(), plan.root());
            for id in plan.postorder() {
                assert_eq!(back.node(id).op, plan.node(id).op);
                assert_eq!(back.node(id).children, plan.node(id).children);
            }
        }
    }

    #[test]
    fn expressions_roundtrip() {
        let e = Expr::And(vec![
            Expr::Cmp(
                Box::new(Expr::Col(AttrId(1))),
                CmpOp::Ge,
                Box::new(Expr::Lit(Value::Int(10))),
            ),
            Expr::Like {
                expr: Box::new(Expr::Col(AttrId(2))),
                pattern: "%x%".into(),
                negated: true,
            },
            Expr::Case {
                branches: vec![(
                    Expr::IsNull {
                        expr: Box::new(Expr::Col(AttrId(3))),
                        negated: false,
                    },
                    Expr::Lit(Value::Int(0)),
                )],
                else_: Some(Box::new(Expr::AggRef(1))),
            },
            Expr::Substring {
                expr: Box::new(Expr::Col(AttrId(4))),
                start: 1,
                len: 2,
            },
        ]);
        let mut b = Vec::new();
        put_expr(&mut b, &e);
        let back = get_expr(&mut Reader::new(&b)).expect("expr decodes");
        assert_eq!(back, e);
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        assert!(decode_frame(&[]).is_none());
        assert!(decode_frame(&[99]).is_none());
        // Truncated table frame.
        let mut good = encode_frame(&Frame::Data {
            epoch: 1,
            msg: Msg::Result {
                from: SubjectId(0),
                seq: 0,
                table: Table::new(vec![AttrId(0)]),
            },
        });
        good.pop();
        assert!(decode_frame(&good).is_none());
        // Trailing garbage.
        let mut padded = encode_frame(&Frame::Shutdown);
        padded.push(0);
        assert!(decode_frame(&padded).is_none());
    }

    #[test]
    fn cluster_keys_roundtrip_through_bytes() {
        use mpq_crypto::keyring::ClusterKey;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let key = ClusterKey::generate(&mut rng, 9, 256);
        let back = ClusterKey::from_bytes(&key.to_bytes()).expect("key decodes");
        assert_eq!(back.id, key.id);
        assert_eq!(back.det_key(), key.det_key());
        assert_eq!(back.rnd_key(), key.rnd_key());
        assert_eq!(back.ope_key(), key.ope_key());
        assert_eq!(back.paillier_public(), key.paillier_public());
        // The private half survives: decrypt what the original encrypts.
        let m = mpq_crypto::bignum::BigUint::from_u64(123456);
        let c = key.paillier_public().encrypt(&mut rng, &m);
        assert_eq!(back.paillier().decrypt(&c), m);
    }
}
