//! Cell-level inspection of tables crossing subject boundaries.
//!
//! The static checks of `mpq_core` reason over *profiles*; this module
//! is the belt-and-braces runtime counterpart operating on the actual
//! data: before a table is handed to a subject, every cell is checked
//! against the recipient's overall view `[P_S, E_S]`:
//!
//! * an attribute in `P_S` may arrive in any form (plaintext authority
//!   implies encrypted visibility);
//! * an attribute in `E_S \ P_S` must arrive as ciphertext — a
//!   plaintext cell is a [`SimError::LeakedPlaintext`];
//! * an attribute in neither set must not arrive at all
//!   ([`SimError::InvisibleAttribute`]).
//!
//! NULLs carry no value and pass in either form, matching the
//! encryption layer (`mpq_crypto::schemes` passes NULL through).

use crate::error::SimError;
use mpq_core::authz::SubjectView;
use mpq_exec::{ColumnVec, Table, WorkerPool};

/// Minimum rows per chunk before the cell scan splits across workers.
const MIN_CHUNK_ROWS: usize = 512;

/// Check that every cell of `table` is in a form `recipient` is
/// authorized to see, scanning column chunks on the shared global
/// worker pool. Called on every table that crosses a subject-to-subject
/// edge (including the final result handed to the querying user).
pub fn audit_transfer(table: &Table, recipient: &SubjectView) -> Result<(), SimError> {
    audit_transfer_with(table, recipient, &WorkerPool::global())
}

/// [`audit_transfer`] on an explicit worker pool (the simulator's party
/// loops pass theirs so audits share the same thread budget as
/// execution).
///
/// Column-major fast path: each column's *required form* is resolved
/// once against the view — plaintext-visible columns are skipped
/// entirely, invisible columns are refused before any row is read —
/// and only the encrypted-only columns are scanned directly (a typed
/// numeric column can hold no ciphertext, so it is refused at its
/// first row without reading cells). The reported violation is the
/// first one in row order, identical to a sequential row scan.
pub fn audit_transfer_with(
    table: &Table,
    recipient: &SubjectView,
    pool: &WorkerPool,
) -> Result<(), SimError> {
    // Column-level visibility first: a column the recipient cannot see
    // in any form is refused outright, rows notwithstanding.
    for &attr in table.attrs() {
        if !recipient.plain.contains(attr) && !recipient.enc.contains(attr) {
            return Err(SimError::InvisibleAttribute {
                attr,
                subject: recipient.subject,
            });
        }
    }
    // Cell-level form check for encrypted-only columns.
    let enc_only: Vec<usize> = table
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !recipient.plain.contains(**a))
        .map(|(i, _)| i)
        .collect();
    if enc_only.is_empty() || table.is_empty() {
        return Ok(());
    }
    pool.for_each_chunk(table.len(), MIN_CHUNK_ROWS, |range| {
        // The earliest violation in (row, column) order within this
        // chunk — the same cell a sequential row-major scan reports.
        let mut first: Option<(usize, usize)> = None;
        for (k, &i) in enc_only.iter().enumerate() {
            if let Some(r) = first_plaintext_cell(table.column(i), range.clone()) {
                if first.is_none_or(|best| (r, k) < best) {
                    first = Some((r, k));
                }
            }
        }
        match first {
            Some((_, k)) => Err(SimError::LeakedPlaintext {
                attr: table.attrs()[enc_only[k]],
                subject: recipient.subject,
            }),
            None => Ok(()),
        }
    })
}

/// Row index of the first plaintext non-NULL cell of `col` within
/// `range`, if any.
fn first_plaintext_cell(col: &ColumnVec, range: std::ops::Range<usize>) -> Option<usize> {
    match col {
        // Typed numeric columns hold only plaintext non-NULLs: every
        // row violates an encrypted-only view.
        ColumnVec::Int(_) | ColumnVec::Num(_) => {
            if range.is_empty() {
                None
            } else {
                Some(range.start)
            }
        }
        ColumnVec::Val(vals) => vals[range.clone()]
            .iter()
            .position(|v| !matches!(v, mpq_algebra::Value::Enc(_) | mpq_algebra::Value::Null))
            .map(|off| range.start + off),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_algebra::value::{EncScheme, EncValue};
    use mpq_algebra::{AttrId, SubjectId, Value};
    use mpq_core::authz::SubjectView;
    use std::sync::Arc;

    fn view(plain: &[u32], enc: &[u32]) -> SubjectView {
        SubjectView {
            subject: SubjectId(9),
            plain: plain.iter().map(|&a| AttrId(a)).collect(),
            enc: enc.iter().map(|&a| AttrId(a)).collect(),
        }
    }

    fn cipher() -> Value {
        Value::Enc(EncValue {
            scheme: EncScheme::Deterministic,
            key_id: 0,
            bytes: Arc::from(vec![1, 2, 3]),
        })
    }

    #[test]
    fn plaintext_ok_for_plain_view() {
        let t = Table::from_rows(vec![AttrId(0)], vec![vec![Value::Int(1)]]);
        assert!(audit_transfer(&t, &view(&[0], &[])).is_ok());
    }

    #[test]
    fn ciphertext_ok_for_enc_only_view() {
        let t = Table::from_rows(vec![AttrId(0)], vec![vec![cipher()]]);
        assert!(audit_transfer(&t, &view(&[], &[0])).is_ok());
    }

    #[test]
    fn ciphertext_ok_for_plain_view_too() {
        // Plaintext authority implies encrypted visibility.
        let t = Table::from_rows(vec![AttrId(0)], vec![vec![cipher()]]);
        assert!(audit_transfer(&t, &view(&[0], &[])).is_ok());
    }

    #[test]
    fn plaintext_leak_to_enc_only_view_refused() {
        let t = Table::from_rows(vec![AttrId(0)], vec![vec![Value::Int(7)]]);
        assert_eq!(
            audit_transfer(&t, &view(&[], &[0])),
            Err(SimError::LeakedPlaintext {
                attr: AttrId(0),
                subject: SubjectId(9)
            })
        );
    }

    #[test]
    fn leak_in_typed_column_is_caught() {
        // A densified numeric column (no Value wrappers at all) still
        // violates an encrypted-only view.
        let t = Table::from_rows(
            vec![AttrId(0)],
            vec![vec![Value::Num(1.0)], vec![Value::Num(2.0)]],
        );
        assert!(t.column(0).as_nums().is_some(), "column densified");
        assert_eq!(
            audit_transfer(&t, &view(&[], &[0])),
            Err(SimError::LeakedPlaintext {
                attr: AttrId(0),
                subject: SubjectId(9)
            })
        );
    }

    #[test]
    fn invisible_column_refused_even_when_empty() {
        let t = Table::new(vec![AttrId(3)]);
        assert_eq!(
            audit_transfer(&t, &view(&[0, 1], &[2])),
            Err(SimError::InvisibleAttribute {
                attr: AttrId(3),
                subject: SubjectId(9)
            })
        );
    }

    #[test]
    fn nulls_pass_in_any_form() {
        let t = Table::from_rows(vec![AttrId(0)], vec![vec![Value::Null]]);
        assert!(audit_transfer(&t, &view(&[], &[0])).is_ok());
    }
}
