//! Cell-level inspection of tables crossing subject boundaries.
//!
//! The static checks of `mpq_core` reason over *profiles*; this module
//! is the belt-and-braces runtime counterpart operating on the actual
//! rows: before a table is handed to a subject, every cell is checked
//! against the recipient's overall view `[P_S, E_S]`:
//!
//! * an attribute in `P_S` may arrive in any form (plaintext authority
//!   implies encrypted visibility);
//! * an attribute in `E_S \ P_S` must arrive as ciphertext — a
//!   plaintext cell is a [`SimError::LeakedPlaintext`];
//! * an attribute in neither set must not arrive at all
//!   ([`SimError::InvisibleAttribute`]).
//!
//! NULLs carry no value and pass in either form, matching the
//! encryption layer (`mpq_crypto::schemes` passes NULL through).

use crate::error::SimError;
use mpq_algebra::Value;
use mpq_core::authz::SubjectView;
use mpq_exec::{Table, WorkerPool};

/// Minimum rows per chunk before the cell scan splits across workers.
const MIN_CHUNK_ROWS: usize = 512;

/// Check that every cell of `table` is in a form `recipient` is
/// authorized to see, scanning row chunks on the shared global worker
/// pool. Called on every table that crosses a subject-to-subject edge
/// (including the final result handed to the querying user).
pub fn audit_transfer(table: &Table, recipient: &SubjectView) -> Result<(), SimError> {
    audit_transfer_with(table, recipient, &WorkerPool::global())
}

/// [`audit_transfer`] on an explicit worker pool (the simulator's party
/// loops pass theirs so audits share the same thread budget as
/// execution).
///
/// Column-major fast path: each column's *required form* is resolved
/// once against the view — plaintext-visible columns are skipped
/// entirely, invisible columns are refused before any row is read —
/// and only the encrypted-only column indices are scanned, in parallel
/// chunks of rows. The reported violation is the first one in row
/// order, identical to a sequential scan.
pub fn audit_transfer_with(
    table: &Table,
    recipient: &SubjectView,
    pool: &WorkerPool,
) -> Result<(), SimError> {
    // Column-level visibility first: a column the recipient cannot see
    // in any form is refused outright, rows notwithstanding.
    for &attr in &table.cols {
        if !recipient.plain.contains(attr) && !recipient.enc.contains(attr) {
            return Err(SimError::InvisibleAttribute {
                attr,
                subject: recipient.subject,
            });
        }
    }
    // Cell-level form check for encrypted-only columns.
    let enc_only: Vec<usize> = table
        .cols
        .iter()
        .enumerate()
        .filter(|(_, a)| !recipient.plain.contains(**a))
        .map(|(i, _)| i)
        .collect();
    if enc_only.is_empty() {
        return Ok(());
    }
    let rows = &table.rows;
    pool.for_each_chunk(rows.len(), MIN_CHUNK_ROWS, |range| {
        for row in &rows[range] {
            for &i in &enc_only {
                match &row[i] {
                    Value::Enc(_) | Value::Null => {}
                    _plaintext => {
                        return Err(SimError::LeakedPlaintext {
                            attr: table.cols[i],
                            subject: recipient.subject,
                        })
                    }
                }
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_algebra::value::{EncScheme, EncValue};
    use mpq_algebra::{AttrId, SubjectId};
    use mpq_core::authz::SubjectView;
    use std::sync::Arc;

    fn view(plain: &[u32], enc: &[u32]) -> SubjectView {
        SubjectView {
            subject: SubjectId(9),
            plain: plain.iter().map(|&a| AttrId(a)).collect(),
            enc: enc.iter().map(|&a| AttrId(a)).collect(),
        }
    }

    fn cipher() -> Value {
        Value::Enc(EncValue {
            scheme: EncScheme::Deterministic,
            key_id: 0,
            bytes: Arc::from(vec![1, 2, 3]),
        })
    }

    #[test]
    fn plaintext_ok_for_plain_view() {
        let t = Table {
            cols: vec![AttrId(0)],
            rows: vec![vec![Value::Int(1)]],
        };
        assert!(audit_transfer(&t, &view(&[0], &[])).is_ok());
    }

    #[test]
    fn ciphertext_ok_for_enc_only_view() {
        let t = Table {
            cols: vec![AttrId(0)],
            rows: vec![vec![cipher()]],
        };
        assert!(audit_transfer(&t, &view(&[], &[0])).is_ok());
    }

    #[test]
    fn ciphertext_ok_for_plain_view_too() {
        // Plaintext authority implies encrypted visibility.
        let t = Table {
            cols: vec![AttrId(0)],
            rows: vec![vec![cipher()]],
        };
        assert!(audit_transfer(&t, &view(&[0], &[])).is_ok());
    }

    #[test]
    fn plaintext_leak_to_enc_only_view_refused() {
        let t = Table {
            cols: vec![AttrId(0)],
            rows: vec![vec![Value::Int(7)]],
        };
        assert_eq!(
            audit_transfer(&t, &view(&[], &[0])),
            Err(SimError::LeakedPlaintext {
                attr: AttrId(0),
                subject: SubjectId(9)
            })
        );
    }

    #[test]
    fn invisible_column_refused_even_when_empty() {
        let t = Table {
            cols: vec![AttrId(3)],
            rows: vec![],
        };
        assert_eq!(
            audit_transfer(&t, &view(&[0, 1], &[2])),
            Err(SimError::InvisibleAttribute {
                attr: AttrId(3),
                subject: SubjectId(9)
            })
        );
    }

    #[test]
    fn nulls_pass_in_any_form() {
        let t = Table {
            cols: vec![AttrId(0)],
            rows: vec![vec![Value::Null]],
        };
        assert!(audit_transfer(&t, &view(&[], &[0])).is_ok());
    }
}
