//! The federated client/server deployment: one OS **process** per
//! subject.
//!
//! [`Session`](crate::Session) realizes the paper's §6 protocol with
//! one *thread* per subject inside a single process. This module
//! promotes that topology to the architecture Fig. 8 actually draws:
//! every subject is its own [`Server`] process holding **only its own
//! material** — its partition of the base relations, its RSA keypair,
//! and the cluster keys Def. 6.1 provisions to it — while a
//! [`Coordinator`] embedded in the querying user's process drives the
//! protocol over real TCP:
//!
//! 1. **hello** — the coordinator connects to every server's control
//!    port, announces the querying user and its RSA public key, and
//!    learns each server's subject id and public key
//!    (`Frame::Hello`/`Frame::HelloAck`);
//! 2. **provision** — Def. 6.1 cluster keys are generated client-side
//!    and shipped to their holders as sealed
//!    `[[key]_priU]_pubS` envelopes (`Frame::Provision`); computing
//!    non-holders receive only the public Paillier modulus
//!    (`Frame::ProvisionPublic`) — enough to aggregate, never to
//!    decrypt. Private RSA keys never cross the wire in any direction;
//! 3. **execute** — each participant receives the wire projection of
//!    the query job plus its signed sub-query request
//!    (`Frame::Execute`); the signed request *is* the authorization
//!    to compute, and a server that cannot open and verify its
//!    envelope refuses the epoch;
//! 4. **data plane** — result tables flow *directly* between the
//!    subject processes (true peer-to-peer, not through the
//!    coordinator) as framed `Msg` records; the
//!    receiving party audits every cell against its own view and
//!    accounts the bytes, exactly as in-process;
//! 5. **done** — every participant reports
//!    `Frame::Done`/`Frame::Failed` on its control connection and
//!    the coordinator assembles the [`Report`].
//!
//! The whole exchange is built to survive flaky links: control sends
//! run under the same bounded-retry/backoff discipline as the data
//! plane, a dead control connection is re-dialed and the pending
//! `Execute` re-delivered, and servers cache per-epoch outcomes so
//! re-delivery replays the recorded answer instead of executing twice
//! (after re-verifying the signed envelope — recovery never relaxes
//! authorization). A fault that outlives the budget aborts *the epoch*
//! with a typed error; the fleet keeps serving the next query.
//!
//! The executing machinery is byte-for-byte the session runtime:
//! `run_query` — the same function the in-process party threads run
//! — executes each server's share, so every guarantee (receive audit,
//! epoch isolation, typed transport aborts) carries over. What a
//! server *cannot* check is the batch-payload equality the simulator's
//! parties verify (they share the coordinator's memory); opening the
//! sealed envelope and verifying the user's signature is the honest
//! remote counterpart.

use crate::codec::{Frame, RemoteJob};
use crate::error::SimError;
use crate::fault::{splitmix64, FaultAction, FaultPlan, RetryPolicy};
use crate::runtime::{broadcast_abort, run_query, Msg, Outcome, PartyMsg, PartyStatic, QueryJob};
use crate::session::{Prepared, SessionConfig};
use crate::transport::{
    Control, EdgeRecovery, FaultState, TcpHub, TcpTransport, Transport, TransportError, Wire,
    WireStats,
};
use crate::{Party, Report, PAILLIER_BITS, RSA_BITS};
use mpq_algebra::{Catalog, NodeId, Operator, SubjectId};
use mpq_core::authz::{Policy, SubjectView};
use mpq_core::dispatch::dispatch;
use mpq_core::extend::ExtendedPlan;
use mpq_core::keys::KeyPlan;
use mpq_core::subjects::Subjects;
use mpq_crypto::bignum::BigUint;
use mpq_crypto::keyring::{ClusterKey, KeyRing};
use mpq_crypto::paillier::PaillierPublic;
use mpq_crypto::rsa::{RsaKeypair, RsaPublic, SignedEnvelope};
use mpq_exec::{assign_schemes, rewrite_literals, Database, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long control-plane connects wait before failing typed.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Extra slack the coordinator grants servers past the data-plane
/// receive timeout before declaring their control connection dead: a
/// server that hits its own timeout still needs a moment to report
/// `Failed`.
const DONE_SLACK: Duration = Duration::from_secs(5);

/// How many completed epochs a server keeps outcome frames for, so a
/// coordinator re-sending `Execute` after an ambiguous failure gets the
/// recorded `Done`/`Failed` replayed instead of a second execution.
const OUTCOME_CACHE: u64 = 8;

/// Salt separating control-plane backoff jitter from the data plane's
/// (both derive from the session seed).
const CTL_SALT: u64 = 0x6374_6c5f_7365_6564; // "ctl_seed"

/// Everything one `mpq-server` process needs to host a subject.
///
/// The deliberate *absence* here is the point: no other subject's
/// store, no other subject's keys, no policy-wide state beyond this
/// subject's own view (needed for the receive audit). Catalog, view,
/// and the store partition are derived from a shared fixture on both
/// sides of the wire (see the `mpq-server` binary).
pub struct ServerConfig {
    /// The subject this process hosts.
    pub me: SubjectId,
    /// Listen address (`host:port`; port 0 for OS-assigned).
    pub listen: String,
    /// Data-plane addresses of the *other* parties, including the
    /// coordinator's user.
    pub peers: HashMap<SubjectId, String>,
    /// Seed for this server's RSA keypair.
    pub seed: u64,
    /// The shared schema.
    pub catalog: Catalog,
    /// This subject's overall view (receive audits).
    pub view: SubjectView,
    /// This subject's partition of the base relations.
    pub store: Database,
    /// Fault schedule for this server's *sending* data plane (falls
    /// back to `MPQ_FAULTS` when `None`).
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff shape for data-plane sends.
    pub retry: RetryPolicy,
}

/// A bound subject process: one listener serving both the data plane
/// (peer connections) and the control plane (the coordinator).
pub struct Server {
    st: PartyStatic,
    peers: HashMap<SubjectId, String>,
    rx: Receiver<PartyMsg>,
    ctl_rx: Receiver<Control>,
    hub: TcpHub,
    seed: u64,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    /// Outcome frames of recent epochs, replayed when a recovering
    /// coordinator re-delivers an `Execute` this server already ran.
    outcomes: HashMap<u64, Frame>,
}

impl Server {
    /// Bind the listener and generate this subject's keypair. The
    /// process serves coordinators until one sends
    /// `Frame::Shutdown`.
    pub fn bind(config: ServerConfig) -> Result<Server, TransportError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let party = Arc::new(Party {
            rsa: RsaKeypair::generate(&mut rng, RSA_BITS),
            ring: KeyRing::new(),
            store: config.store,
        });
        let (tx, rx) = channel();
        let (ctl_tx, ctl_rx) = channel();
        let hub = TcpHub::bind(&config.listen, tx, Some(ctl_tx))?;
        Ok(Server {
            st: PartyStatic {
                me: config.me,
                catalog: Arc::new(config.catalog),
                view: config.view,
                party,
            },
            peers: config.peers,
            rx,
            ctl_rx,
            hub,
            seed: config.seed,
            faults: config.faults,
            retry: config.retry,
            outcomes: HashMap::new(),
        })
    }

    /// The actually-bound `host:port` (resolves port 0).
    pub fn addr(&self) -> &str {
        self.hub.addr()
    }

    /// The subject this server hosts.
    pub fn subject(&self) -> SubjectId {
        self.st.me
    }

    /// Serve coordinators until one sends `Frame::Shutdown`. A
    /// coordinator dropping its connection — or damaging it mid-epoch —
    /// returns the server to accepting the next one; provisioned keys
    /// and cached epoch outcomes persist across coordinator
    /// connections (they are this subject's material).
    pub fn run(mut self) -> Result<(), TransportError> {
        let backend: Arc<dyn Transport> = Arc::new(TcpTransport::new(
            self.st.me,
            self.peers.clone(),
            CONNECT_TIMEOUT,
        ));
        let plan = self.faults.clone().or_else(FaultPlan::from_env);
        let wire = Wire::new(
            self.st.me,
            self.seed,
            backend,
            Arc::new(Mutex::new(FaultState::new(plan))),
            self.retry,
            Arc::new(WireStats::default()),
        );
        let mut stash: Vec<(u64, Msg)> = Vec::new();
        loop {
            let Ok(mut ctl) = self.ctl_rx.recv() else {
                return Ok(());
            };
            match self.serve_conn(&mut ctl, &wire, &mut stash) {
                Ok(true) => return Ok(()),
                // The coordinator went away or its connection died
                // mid-conversation: either way this server keeps its
                // material and serves the next connection. A fleet
                // survives any one flaky link.
                Ok(false) | Err(_) => continue,
            }
        }
    }

    /// Serve one coordinator connection. `Ok(true)` means shutdown was
    /// requested; `Ok(false)` means the coordinator went away.
    fn serve_conn(
        &mut self,
        ctl: &mut Control,
        wire: &Wire,
        stash: &mut Vec<(u64, Msg)>,
    ) -> Result<bool, TransportError> {
        // The handshake fixes who we are talking *for*: every envelope
        // of this connection must verify against this user key.
        let mut user_public: Option<RsaPublic> = None;
        loop {
            let frame = match ctl.recv(None) {
                Ok(f) => f,
                Err(TransportError::Closed) => return Ok(false),
                Err(e) => return Err(e),
            };
            match frame {
                Frame::Hello { user: _, public } => {
                    user_public = Some(public);
                    ctl.send(&Frame::HelloAck {
                        me: self.st.me,
                        public: self.st.party.rsa.public.clone(),
                    })?;
                }
                Frame::Provision { envelope } => {
                    // Def. 6.1 delivery: sealed to us, signed by the
                    // user. A key that fails to open is simply not
                    // granted — the query that needed it will fail with
                    // a typed MissingKey at execution.
                    if let Some(pk) = &user_public {
                        if let Some(key) = envelope
                            .open(&self.st.party.rsa, pk)
                            .and_then(|bytes| ClusterKey::from_bytes(&bytes))
                        {
                            self.st.party.ring.insert(key);
                        }
                    }
                }
                Frame::ProvisionPublic { id, n } => {
                    self.st.party.ring.insert_public(
                        id,
                        PaillierPublic::from_modulus(BigUint::from_bytes_be(&n)),
                    );
                }
                Frame::Execute {
                    epoch,
                    job,
                    envelope,
                } => {
                    let Some(pk) = user_public.clone() else {
                        ctl.send(&Frame::Failed {
                            epoch,
                            message: "Execute before Hello".to_string(),
                        })?;
                        continue;
                    };
                    // A re-delivered Execute (the coordinator re-sent
                    // after an ambiguous failure) replays the recorded
                    // outcome instead of executing twice — but the
                    // authorization is never relaxed: the envelope must
                    // still open and verify against the session's user
                    // key before anything is replayed.
                    if self.outcomes.contains_key(&epoch) {
                        let authorized = envelope
                            .as_ref()
                            .is_some_and(|env| env.open(&self.st.party.rsa, &pk).is_some());
                        let reply = if authorized {
                            self.outcomes[&epoch].clone()
                        } else {
                            Frame::Failed {
                                epoch,
                                message: SimError::Envelope { to: self.st.me }.to_string(),
                            }
                        };
                        ctl.send(&reply)?;
                        continue;
                    }
                    let outcome = self.execute(epoch, job, envelope, &pk, wire, stash);
                    let reply = match outcome {
                        Outcome::Done(out) => {
                            let mut transfers: Vec<(SubjectId, SubjectId, u64)> = out
                                .transfers
                                .into_iter()
                                .map(|((f, t), b)| (f, t, b as u64))
                                .collect();
                            transfers.sort_by_key(|(f, t, _)| (f.index(), t.index()));
                            Frame::Done { epoch, transfers }
                        }
                        Outcome::Failed(e) => Frame::Failed {
                            epoch,
                            message: e.to_string(),
                        },
                        Outcome::Aborted => Frame::Failed {
                            epoch,
                            message: ABORTED_MARK.to_string(),
                        },
                        Outcome::Panicked(m) => Frame::Failed {
                            epoch,
                            message: format!("party panicked: {m}"),
                        },
                    };
                    // Record the outcome *before* reporting it: if the
                    // send fails because the coordinator's connection
                    // died, the recovery path re-delivers Execute and
                    // finds the answer here.
                    self.outcomes.insert(epoch, reply.clone());
                    self.outcomes.retain(|&e, _| e + OUTCOME_CACHE > epoch);
                    ctl.send(&reply)?;
                }
                Frame::Shutdown => return Ok(true),
                // Data-plane or coordinator-bound frames on a control
                // connection: a confused peer. Drop the connection.
                _ => return Ok(false),
            }
        }
    }

    /// Execute this server's share of one epoch with the session
    /// runtime's own `run_query`.
    fn execute(
        &self,
        epoch: u64,
        job: RemoteJob,
        envelope: Option<SignedEnvelope>,
        user_public: &RsaPublic,
        wire: &Wire,
        stash: &mut Vec<(u64, Msg)>,
    ) -> Outcome {
        // The signed request is the authorization to compute: it must
        // open (sealed to us) and verify (signed by the user). The
        // in-process simulator additionally compares the payload to
        // the expected batch — a shared-memory artifact a real server
        // cannot reproduce; signature verification is the honest
        // remote equivalent.
        match &envelope {
            Some(env) => {
                if env.open(&self.st.party.rsa, user_public).is_none() {
                    broadcast_abort(wire, epoch, &job.participants, self.st.me);
                    return Outcome::Failed(SimError::Envelope { to: self.st.me });
                }
            }
            None => {
                broadcast_abort(wire, epoch, &job.participants, self.st.me);
                return Outcome::Failed(SimError::Envelope { to: self.st.me });
            }
        }
        let order = job.plan.postorder();
        let parents = job.plan.parents();
        // Recomputed, not shipped: fusion sites are deterministic in
        // (plan, assignment), so every server and the coordinator
        // agree on which Encrypts fold into their parent Selects.
        let fused = crate::session::fusion_sites(&job.plan, &job.assignment);
        let qj = QueryJob {
            prepared: Prepared {
                exec_plan: job.plan,
                schemes: job.schemes,
                key_of_attr: job.key_of_attr,
                order,
                transfers: HashMap::new(),
                // Envelope verification happened above; run_query's
                // own envelope loop has nothing left to check.
                envelopes: Vec::new(),
                requests: 0,
                exec_seed: job.exec_seed,
                fused,
            },
            assignment: job.assignment,
            parents,
            participants: job.participants,
            user: job.user,
            user_public: user_public.clone(),
            pool: WorkerPool::global(),
            timeout: (job.timeout_ms > 0).then(|| Duration::from_millis(job.timeout_ms)),
        };
        catch_unwind(AssertUnwindSafe(|| {
            run_query(&self.st, &qj, epoch, &self.rx, wire, stash)
        }))
        .unwrap_or_else(|payload| {
            broadcast_abort(wire, epoch, &qj.participants, self.st.me);
            let m = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Panicked(m)
        })
    }
}

/// Marker a server reports when it stopped because a *peer* failed —
/// the coordinator prefers the actual failure over this echo.
const ABORTED_MARK: &str = "aborted: a peer failed first";

/// The querying user's end of the federated deployment: holds the
/// user's own party (keys, store partition, data-plane hub), a control
/// connection to every server, and drives the full §6 protocol per
/// query.
pub struct Coordinator {
    user: SubjectId,
    catalog: Arc<Catalog>,
    subjects: Arc<Subjects>,
    views: Vec<SubjectView>,
    st: PartyStatic,
    controls: HashMap<SubjectId, Control>,
    server_publics: HashMap<SubjectId, RsaPublic>,
    /// Control addresses, kept for re-dialing a lost connection.
    server_addrs: HashMap<SubjectId, String>,
    wire: Wire,
    wire_stats: Arc<WireStats>,
    /// Control-plane fault schedule, with its *own* per-edge counters:
    /// the data-plane trace stays a function of data-plane attempts
    /// alone, comparable across transport backends.
    ctl_faults: FaultState,
    retry: RetryPolicy,
    seed: u64,
    /// The Execute frame sent to each participant this epoch, kept so a
    /// reconnected control channel can re-deliver it.
    pending_execute: HashMap<SubjectId, Frame>,
    /// Control-plane re-sends and reconnects performed so far.
    ctl_recovered: u64,
    rx: Receiver<PartyMsg>,
    stash: Vec<(u64, Msg)>,
    _hub: TcpHub,
    rng: StdRng,
    exec_seed: u64,
    epoch: u64,
    pool: WorkerPool,
    preflight: bool,
    timeout: Duration,
}

impl Coordinator {
    /// Connect to every server, run the hello handshake, and set up
    /// the user's own party (data-plane hub on `listen`, store holding
    /// the relations the user is the authority of).
    ///
    /// `servers` maps each remote subject to its `host:port`; the
    /// servers' own `peers` maps must point back at `listen` for the
    /// user's subject, since result tables flow peer-to-peer. `db` is
    /// the full fixture database — only the user-authority partition
    /// stays in this process. The [`SessionConfig`] contributes seed,
    /// pre-flight, and timeout (its transport field is moot: a
    /// coordinator is TCP by definition).
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        catalog: &Catalog,
        subjects: &Subjects,
        policy: &Policy,
        db: &Database,
        user: SubjectId,
        listen: &str,
        servers: &HashMap<SubjectId, String>,
        config: SessionConfig,
    ) -> Result<Coordinator, SimError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let rsa = RsaKeypair::generate(&mut rng, RSA_BITS);
        let mut store = Database::new();
        for rel in catalog.relations() {
            if subjects.authority(rel.rel) == Some(user) {
                if let Some(table) = db.table(rel.rel) {
                    store.insert(rel.rel, table.clone());
                }
            }
        }
        let catalog = Arc::new(catalog.clone());
        let subjects = Arc::new(subjects.clone());
        let views = policy.all_views(&catalog, &subjects);
        let (tx, rx) = channel();
        let hub = TcpHub::bind(listen, tx, None).map_err(SimError::Transport)?;

        let st = PartyStatic {
            me: user,
            catalog: Arc::clone(&catalog),
            view: views[user.index()].clone(),
            party: Arc::new(Party {
                rsa,
                ring: KeyRing::new(),
                store,
            }),
        };
        let plan = config.faults.clone().or_else(FaultPlan::from_env);
        let faults = Arc::new(Mutex::new(FaultState::new(plan.clone())));
        let wire_stats = Arc::new(WireStats::default());
        let backend: Arc<dyn Transport> =
            Arc::new(TcpTransport::new(user, servers.clone(), CONNECT_TIMEOUT));
        let mut coordinator = Coordinator {
            user,
            catalog,
            subjects,
            views,
            st,
            controls: HashMap::new(),
            server_publics: HashMap::new(),
            server_addrs: servers.clone(),
            wire: Wire::new(
                user,
                config.seed,
                backend,
                faults,
                config.retry,
                Arc::clone(&wire_stats),
            ),
            wire_stats,
            ctl_faults: FaultState::new(plan),
            retry: config.retry,
            seed: config.seed,
            pending_execute: HashMap::new(),
            ctl_recovered: 0,
            rx,
            stash: Vec::new(),
            _hub: hub,
            rng,
            exec_seed: config.seed ^ 0x6d70_715f_6578_6563, // "mpq_exec"
            epoch: 0,
            pool: match config.workers {
                Some(n) => WorkerPool::new(n),
                None => WorkerPool::global(),
            },
            preflight: config.preflight,
            timeout: config
                .effective_timeout()
                .unwrap_or(Duration::from_secs(10)),
        };
        let mut order: Vec<SubjectId> = servers.keys().copied().collect();
        order.sort_by_key(|s| s.index());
        for s in order {
            coordinator.redial_control(s)?;
        }
        Ok(coordinator)
    }

    /// Run one query across the server processes: re-verify the
    /// assignment (Def. 4.1 per node), optional static pre-flight,
    /// full Def. 6.1 provisioning over the wire, signed request
    /// dispatch, peer-to-peer execution, and report assembly. Each
    /// query provisions fresh cluster keys, like
    /// [`Simulator::run`](crate::Simulator::run).
    pub fn execute(&mut self, ext: &ExtendedPlan, keys: &KeyPlan) -> Result<Report, SimError> {
        let order = ext.plan.postorder();
        let assignee_of = |id: NodeId| -> Result<SubjectId, SimError> {
            ext.assignment
                .get(&id)
                .copied()
                .ok_or(SimError::Unassigned(id))
        };

        // ---- 1. runtime authorization check (Def. 4.1 per node) ----
        for &id in &order {
            let node = ext.plan.node(id);
            let subject = assignee_of(id)?;
            if let Operator::Base { rel, .. } = &node.op {
                let authority = self
                    .subjects
                    .authority(*rel)
                    .ok_or(SimError::NoAuthority(*rel))?;
                if subject != authority {
                    return Err(SimError::NotTheAuthority {
                        node: id,
                        subject,
                        authority,
                    });
                }
                continue;
            }
            let view = &self.views[subject.index()];
            for &child in &node.children {
                if let Err(violation) = view.check(&ext.profiles[child.index()]) {
                    return Err(SimError::Unauthorized {
                        node: id,
                        subject,
                        violation,
                    });
                }
            }
            if let Err(violation) = view.check(&ext.profiles[id.index()]) {
                return Err(SimError::Unauthorized {
                    node: id,
                    subject,
                    violation,
                });
            }
        }

        // ---- 1b. static pre-flight (mpq_core::verify) --------------
        if self.preflight {
            let report = mpq_core::verify::verify_extended(
                ext,
                keys,
                &self.catalog,
                &self.subjects,
                &self.views,
                Some(self.user),
            );
            if !report.is_clean() {
                return Err(SimError::Verify(report));
            }
        }

        // ---- 2. Def. 6.1 key provisioning over the wire ------------
        let mut computing = vec![false; self.views.len()];
        for &id in &order {
            computing[assignee_of(id)?.index()] = true;
        }
        computing[self.user.index()] = true;
        let mut key_of_attr: HashMap<mpq_algebra::AttrId, u32> = HashMap::new();
        let dispatcher_ring = KeyRing::new();
        for (i, plan_key) in keys.keys.iter().enumerate() {
            let material = ClusterKey::generate(&mut self.rng, i as u32, PAILLIER_BITS);
            for a in plan_key.attrs.iter() {
                key_of_attr.insert(a, material.id);
            }
            for &holder in &plan_key.holders {
                if holder == self.user {
                    self.st.party.ring.insert(material.clone());
                } else {
                    let envelope = SignedEnvelope::seal(
                        &mut self.rng,
                        &material.to_bytes(),
                        &self.st.party.rsa,
                        self.server_publics
                            .get(&holder)
                            .ok_or(SimError::Envelope { to: holder })?,
                    );
                    self.ctl_send(holder, &Frame::Provision { envelope })?;
                }
            }
            let public_n = material.paillier_public().n.to_bytes_be();
            for (idx, &computes) in computing.iter().enumerate() {
                let s = SubjectId::from_index(idx);
                if !computes || plan_key.holders.contains(&s) {
                    continue;
                }
                if s == self.user {
                    self.st
                        .party
                        .ring
                        .insert_public(material.id, material.paillier_public());
                } else {
                    self.ctl_send(
                        s,
                        &Frame::ProvisionPublic {
                            id: material.id,
                            n: public_n.clone(),
                        },
                    )?;
                }
            }
            if !plan_key.holders.is_empty() {
                dispatcher_ring.insert(material.clone());
            }
        }

        // ---- 3. dispatch: signed, encrypted sub-query requests -----
        let schemes = assign_schemes(&ext.plan).map_err(|e| SimError::Scheme(e.to_string()))?;
        let exec_plan = rewrite_literals(
            &ext.plan,
            &self.catalog,
            &schemes,
            &key_of_attr,
            &dispatcher_ring,
            &mut self.rng,
        )
        .map_err(SimError::Rewrite)?;

        let d = dispatch(ext, keys, &self.catalog, &self.subjects);
        let mut batches: Vec<Vec<u8>> = vec![Vec::new(); self.views.len()];
        for req in &d.requests {
            let batch = &mut batches[req.subject.index()];
            if !batch.is_empty() {
                batch.extend_from_slice(b"\n===\n");
            }
            batch.extend_from_slice(req.sql.as_bytes());
            for key_id in &req.keys {
                batch.extend_from_slice(format!("\nkey:{key_id}").as_bytes());
            }
        }
        let mut request_bytes: HashMap<(SubjectId, SubjectId), usize> = HashMap::new();
        let mut envelopes: HashMap<SubjectId, SignedEnvelope> = HashMap::new();
        for (i, payload) in batches.into_iter().enumerate() {
            let to = SubjectId::from_index(i);
            if payload.is_empty() || to == self.user {
                continue;
            }
            let envelope = SignedEnvelope::seal(
                &mut self.rng,
                &payload,
                &self.st.party.rsa,
                self.server_publics
                    .get(&to)
                    .ok_or(SimError::Envelope { to })?,
            );
            *request_bytes.entry((self.user, to)).or_default() +=
                envelope.wrapped_key.len() + envelope.body.len() + envelope.signature.len();
            envelopes.insert(to, envelope);
        }

        // ---- 4. Execute frames + the user's own share --------------
        self.epoch += 1;
        let epoch = self.epoch;
        let mut is_participant = vec![false; self.views.len()];
        for id in &order {
            is_participant[ext.assignment[id].index()] = true;
        }
        is_participant[self.user.index()] = true;
        let participants: Vec<SubjectId> = (0..self.views.len())
            .map(SubjectId::from_index)
            .filter(|s| is_participant[s.index()])
            .collect();
        let job = RemoteJob {
            plan: exec_plan,
            schemes,
            key_of_attr,
            assignment: ext.assignment.clone(),
            participants: participants.clone(),
            user: self.user,
            exec_seed: self.exec_seed,
            timeout_ms: self.timeout.as_millis() as u64,
        };
        self.pending_execute.clear();
        for &s in &participants {
            if s == self.user {
                continue;
            }
            let frame = Frame::Execute {
                epoch,
                job: job.clone(),
                envelope: Some(envelopes.remove(&s).ok_or(SimError::Envelope { to: s })?),
            };
            // Keep the frame: a reconnected control channel re-delivers
            // it, and the server-side outcome cache makes re-delivery
            // idempotent.
            self.pending_execute.insert(s, frame.clone());
            if let Err(e) = self.ctl_send(s, &frame) {
                // Graceful degradation: a server whose control channel
                // is beyond the retry budget fails *this epoch*, not
                // the session. Abort the epoch on the data plane so the
                // participants that did receive Execute stop waiting
                // and report, leaving every channel clean for the next
                // query.
                broadcast_abort(&self.wire, epoch, &participants, self.user);
                return Err(e);
            }
        }

        // The user's own share runs inline: the coordinator process
        // *is* the user's party (Fig. 8 — the user participates in the
        // data plane like any provider).
        let parents = job.plan.parents();
        let fused = crate::session::fusion_sites(&job.plan, &job.assignment);
        let qj = QueryJob {
            prepared: Prepared {
                exec_plan: job.plan,
                schemes: job.schemes,
                key_of_attr: job.key_of_attr,
                order,
                transfers: HashMap::new(),
                envelopes: Vec::new(),
                requests: 0,
                exec_seed: self.exec_seed,
                fused,
            },
            assignment: job.assignment,
            parents,
            participants: participants.clone(),
            user: self.user,
            user_public: self.st.party.rsa.public.clone(),
            pool: self.pool.clone(),
            timeout: Some(self.timeout),
        };
        let own = run_query(&self.st, &qj, epoch, &self.rx, &self.wire, &mut self.stash);

        // ---- 5. collect outcomes, assemble the report --------------
        let mut transfers = request_bytes.clone();
        let mut failures: Vec<(SubjectId, String)> = Vec::new();
        let mut result = None;
        match own {
            Outcome::Done(out) => {
                for (edge, bytes) in out.transfers {
                    *transfers.entry(edge).or_default() += bytes;
                }
                result = out.result;
            }
            Outcome::Failed(e) => return Err(e),
            Outcome::Aborted => failures.push((self.user, ABORTED_MARK.to_string())),
            Outcome::Panicked(m) => panic!("coordinator party panicked: {m}"),
        }
        let wait = self.timeout + DONE_SLACK;
        for &s in &participants {
            if s == self.user {
                continue;
            }
            match self.recv_outcome(s, epoch, wait) {
                Ok(Frame::Done { transfers: t, .. }) => {
                    for (f, to, bytes) in t {
                        *transfers.entry((f, to)).or_default() += bytes as usize;
                    }
                }
                Ok(Frame::Failed { message, .. }) => failures.push((s, message)),
                Ok(_) => {
                    return Err(SimError::Transport(TransportError::Frame {
                        detail: "expected Done/Failed".to_string(),
                    }))
                }
                // A control channel dead beyond the retry budget fails
                // this epoch for this participant; the remaining
                // participants are still drained so the next query
                // starts on clean channels.
                Err(e) => failures.push((s, e.to_string())),
            }
        }
        self.pending_execute.clear();
        if !failures.is_empty() {
            // Prefer the actual failure over "a peer failed" echoes,
            // then lowest subject id, mirroring the session's
            // deterministic error precedence.
            failures.sort_by_key(|(s, m)| (m == ABORTED_MARK, s.index()));
            let (from, message) = failures.remove(0);
            return Err(SimError::Transport(TransportError::Peer { from, message }));
        }
        Ok(Report {
            result: result.ok_or(SimError::Transport(TransportError::Frame {
                detail: "no result delivered to the user".to_string(),
            }))?,
            transfers,
            request_bytes,
            requests: d.requests.len(),
        })
    }

    /// Per-edge recovery counters of this coordinator's *data-plane*
    /// sends — the user's share of the peer-to-peer traffic. The
    /// counters are a pure function of the fault schedule, so the same
    /// schedule yields the same map a [`crate::Session`] reports.
    pub fn recovery_stats(&self) -> HashMap<(SubjectId, SubjectId), EdgeRecovery> {
        self.wire_stats.snapshot()
    }

    /// Total recovered deliveries so far: data-plane re-sends plus
    /// control-plane re-sends and reconnects. Non-zero means the
    /// session survived at least one injected or real fault.
    pub fn recovered_sends(&self) -> u64 {
        self.wire_stats.total_retries() + self.ctl_recovered
    }

    /// Ask every server to exit, then drop the connections.
    pub fn shutdown(mut self) {
        for (_, ctl) in self.controls.iter_mut() {
            let _ = ctl.send(&Frame::Shutdown);
        }
    }

    /// Send one control frame under the same bounded-retry discipline
    /// as the data plane: every attempt consults the (control-plane)
    /// fault schedule, every failure burns one unit of the
    /// `max_attempts` budget and backs off with seeded jitter, and a
    /// connection damaged by the fault is re-dialed before the next
    /// attempt.
    fn ctl_send(&mut self, s: SubjectId, frame: &Frame) -> Result<(), SimError> {
        let max_attempts = self.retry.max_attempts.max(1);
        let edge_seed = splitmix64(
            self.seed ^ CTL_SALT ^ ((self.user.index() as u64) << 32) ^ s.index() as u64,
        );
        let mut prev_ms = self.retry.base_ms;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let failed: Option<SimError> = if self.controls.contains_key(&s) {
                let action = self.ctl_faults.next_action(self.user, s);
                if let FaultAction::Delay(d) | FaultAction::Stall(d) = action {
                    std::thread::sleep(d);
                }
                let ctl = self.controls.get_mut(&s).expect("checked above");
                match action {
                    FaultAction::Deliver | FaultAction::Delay(_) | FaultAction::Stall(_) => {
                        match ctl.send(frame) {
                            Ok(()) => None,
                            Err(e) => {
                                // A dead control connection never comes
                                // back; re-dial on the next attempt.
                                self.controls.remove(&s);
                                Some(SimError::Transport(e))
                            }
                        }
                    }
                    // The frame vanishes in flight; the connection is
                    // fine and the retry re-sends on it.
                    FaultAction::Drop => Some(injected(s, "frame dropped")),
                    // The frame is damaged mid-record and the
                    // connection poisoned; nothing usable arrives.
                    FaultAction::Truncate => {
                        ctl.shutdown();
                        self.controls.remove(&s);
                        Some(injected(s, "frame truncated"))
                    }
                    // The frame arrives, then the connection dies — the
                    // ambiguous case. The retry re-delivers, and the
                    // receiver's idempotency (key-ring inserts, the
                    // epoch outcome cache) absorbs the duplicate.
                    FaultAction::Reset => {
                        let _ = ctl.send(frame);
                        ctl.shutdown();
                        self.controls.remove(&s);
                        Some(injected(s, "connection reset"))
                    }
                }
            } else {
                self.redial_control(s).err()
            };
            let Some(err) = failed else {
                return Ok(());
            };
            if attempt >= max_attempts {
                return Err(err);
            }
            self.ctl_recovered += 1;
            let ms = self.retry.backoff_ms(edge_seed, attempt, prev_ms);
            prev_ms = ms;
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Wait for `s`'s `Done`/`Failed` of `epoch`. A dead control
    /// connection is re-dialed and the pending `Execute` re-delivered —
    /// the server either replays its cached outcome or runs the epoch
    /// it never received — up to the retry budget. A *quiet* but
    /// healthy connection (timeout) is not recoverable by reconnecting
    /// and surfaces as the typed timeout abort immediately.
    fn recv_outcome(
        &mut self,
        s: SubjectId,
        epoch: u64,
        wait: Duration,
    ) -> Result<Frame, SimError> {
        let max_attempts = self.retry.max_attempts.max(1);
        let edge_seed = splitmix64(
            self.seed ^ CTL_SALT ^ ((self.user.index() as u64) << 32) ^ s.index() as u64,
        );
        let mut prev_ms = self.retry.base_ms;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let r = match self.controls.get_mut(&s) {
                Some(ctl) => ctl.recv(Some(wait)),
                None => Err(TransportError::Closed),
            };
            match r {
                Ok(Frame::Done {
                    epoch: e,
                    transfers,
                }) => {
                    if e == epoch {
                        return Ok(Frame::Done {
                            epoch: e,
                            transfers,
                        });
                    }
                    // Residue of an earlier epoch: drain it without
                    // consuming recovery budget.
                    attempt -= 1;
                }
                Ok(Frame::Failed { epoch: e, message }) => {
                    if e == epoch {
                        return Ok(Frame::Failed { epoch: e, message });
                    }
                    attempt -= 1;
                }
                Ok(_) => {
                    return Err(SimError::Transport(TransportError::Frame {
                        detail: "expected Done/Failed".to_string(),
                    }))
                }
                Err(e @ TransportError::Timeout { .. }) => return Err(SimError::Transport(e)),
                Err(err) => {
                    self.controls.remove(&s);
                    if attempt >= max_attempts {
                        return Err(SimError::Transport(err));
                    }
                    self.ctl_recovered += 1;
                    let ms = self.retry.backoff_ms(edge_seed, attempt, prev_ms);
                    prev_ms = ms;
                    std::thread::sleep(Duration::from_millis(ms));
                    if self.redial_control(s).is_ok() {
                        if let Some(frame) = self.pending_execute.get(&s).cloned() {
                            if let Some(ctl) = self.controls.get_mut(&s) {
                                if ctl.send(&frame).is_err() {
                                    self.controls.remove(&s);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Dial (or re-dial) one server's control port and redo the hello
    /// handshake. One attempt, never a loop of its own — every caller
    /// sits inside a bounded retry budget. The `HelloAck` wait grants
    /// `DONE_SLACK` past the query timeout because a mid-epoch server
    /// only answers once its current serve loop observes the dead
    /// predecessor connection.
    fn redial_control(&mut self, s: SubjectId) -> Result<(), SimError> {
        let addr = self
            .server_addrs
            .get(&s)
            .cloned()
            .ok_or(SimError::Transport(TransportError::Closed))?;
        let mut ctl = Control::connect(&addr, CONNECT_TIMEOUT).map_err(SimError::Transport)?;
        ctl.send(&Frame::Hello {
            user: self.user,
            public: self.st.party.rsa.public.clone(),
        })
        .map_err(SimError::Transport)?;
        let wait = self.timeout + DONE_SLACK;
        match ctl.recv(Some(wait)).map_err(SimError::Transport)? {
            Frame::HelloAck { me, public } if me == s => {
                self.server_publics.insert(s, public);
            }
            Frame::HelloAck { me, .. } => {
                return Err(SimError::Transport(TransportError::Frame {
                    detail: format!("server at {addr} hosts {me}, expected {s}"),
                }))
            }
            _ => {
                return Err(SimError::Transport(TransportError::Frame {
                    detail: "expected HelloAck".to_string(),
                }))
            }
        }
        self.controls.insert(s, ctl);
        Ok(())
    }
}

/// The uniform sender-visible error for an injected control-plane
/// fault — the same wording the data-plane [`Wire`] synthesizes, so a
/// recovery trace reads identically whichever plane the schedule hit.
fn injected(to: SubjectId, what: &str) -> SimError {
    SimError::Transport(TransportError::Send {
        to,
        detail: format!("injected fault: {what}"),
    })
}
