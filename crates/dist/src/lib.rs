//! # mpq-dist
//!
//! The distributed-execution runtime: the runnable counterpart of the
//! paper's §6 dispatch story — "each subject executes its assigned
//! sub-query and forwards encrypted results".
//!
//! [`Simulator::new`] sets up one *party* per subject: an RSA keypair
//! for request envelopes, an (initially empty) cluster-key ring, and a
//! local store holding exactly the base relations the subject is the
//! data authority of. [`Simulator::run`] then takes a minimally
//! extended authorized plan (`mpq_core::extend`), its key establishment
//! (`mpq_core::keys`, Def. 6.1), and the querying user, and:
//!
//! 1. **re-verifies the assignment at runtime** — every subject must be
//!    authorized (Def. 4.1) for the profile of every relation it
//!    touches, independently of what the static analysis promised
//!    (Theorems 5.1–5.3 get a second, behavioral check here);
//! 2. **provisions key rings** — fresh [`ClusterKey`] material per plan
//!    key, handed to exactly the Def. 6.1 holders; every computing
//!    subject additionally receives the *public* Paillier halves,
//!    enabling homomorphic aggregation without decryption capability;
//! 3. **dispatches signed requests** — the sub-queries of
//!    `mpq_core::dispatch` travel as `[[q_S, keys]_priU]_pubS`
//!    envelopes ([`SignedEnvelope`]), batched per subject-pair edge,
//!    opened and verified by each recipient;
//! 4. **executes concurrently** — every participating subject runs a
//!    [party loop](runtime) on its own thread; a node executes as soon
//!    as its operands' tables have arrived at its assignee, so
//!    independent subtrees of the extended plan run in parallel at
//!    different providers, over real XTEA/OPE/Paillier ciphertexts;
//!    every table crossing a subject boundary is byte-accounted and
//!    [cell-audited](audit) by the *receiving* party;
//! 5. returns a [`Report`] with the final (plaintext, for the user)
//!    result and the bytes-on-the-wire per subject-pair edge.
//!
//! [`Simulator::run_sequential`] interprets the same prepared plan
//! bottom-up on the calling thread. The two paths share all of the
//! preparation (phases 1–3) and produce bit-identical results and
//! per-edge byte counts — a property the differential tests lean on.
//!
//! A subject receiving data its view does not permit — or attempting
//! encryption/decryption with a key it does not hold — aborts the run
//! with a [`SimError`].

pub mod audit;
pub mod error;
pub mod runtime;

pub use audit::audit_transfer;
pub use error::SimError;

use mpq_algebra::{AttrId, Catalog, NodeId, Operator, QueryPlan, RelId, SubjectId};
use mpq_core::authz::{Policy, SubjectView};
use mpq_core::dispatch::dispatch;
use mpq_core::extend::ExtendedPlan;
use mpq_core::keys::KeyPlan;
use mpq_core::subjects::Subjects;
use mpq_crypto::keyring::{ClusterKey, KeyRing};
use mpq_crypto::rsa::{RsaKeypair, RsaPublic, SignedEnvelope};
use mpq_exec::{
    assign_schemes, execute_step, rewrite_literals, Database, ExecCtx, SchemePlan, Table,
    WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Paillier modulus size for simulator-generated cluster keys. Small
/// enough to keep runs fast, large enough for the fixed-point encodings
/// the execution layer produces.
const PAILLIER_BITS: usize = 256;

/// RSA modulus size for request envelopes (demo-grade, like the rest of
/// `mpq-crypto`).
const RSA_BITS: usize = 512;

/// The outcome of a distributed run.
#[derive(Clone, Debug)]
pub struct Report {
    /// The final result, as delivered to the querying user.
    pub result: Table,
    /// Bytes on the wire per directed subject-pair edge: request
    /// envelopes (user → executor) and result tables (producer →
    /// consumer, plus root → user).
    pub transfers: HashMap<(SubjectId, SubjectId), usize>,
    /// The request-envelope share of [`Report::transfers`] (user →
    /// executor dispatch bytes), kept separate so data-flow transfers
    /// can be compared against the §7 cost model, which prices plan
    /// edges, not protocol dispatch.
    pub request_bytes: HashMap<(SubjectId, SubjectId), usize>,
    /// Number of signed sub-query requests dispatched.
    pub requests: usize,
}

impl Report {
    /// Total bytes moved across all edges.
    pub fn total_bytes(&self) -> usize {
        self.transfers.values().sum()
    }

    /// Render the transfer map as sorted `from → to: bytes` lines.
    pub fn render_transfers(&self, subjects: &Subjects) -> String {
        let mut edges: Vec<_> = self.transfers.iter().collect();
        edges.sort_by_key(|((f, t), _)| (f.index(), t.index()));
        let mut out = String::new();
        for ((from, to), bytes) in edges {
            out.push_str(&format!(
                "  {} → {}: {bytes} bytes\n",
                subjects.name(*from),
                subjects.name(*to)
            ));
        }
        out
    }
}

/// One simulated subject: envelope keypair, cluster-key ring, and the
/// base relations it is the authority of.
pub(crate) struct Party {
    pub(crate) rsa: RsaKeypair,
    pub(crate) ring: KeyRing,
    pub(crate) store: Database,
}

/// Output of the shared preparation phase (runtime authorization,
/// Def. 6.1 key provisioning, literal rewriting, envelope sealing) —
/// everything both execution paths consume.
pub(crate) struct Prepared {
    /// The extended plan with encrypted literals spliced in.
    pub(crate) exec_plan: QueryPlan,
    /// Per-attribute encryption schemes.
    pub(crate) schemes: SchemePlan,
    /// Attribute → Def. 6.1 cluster-key id.
    pub(crate) key_of_attr: HashMap<AttrId, u32>,
    /// Execution order (postorder of the extended plan).
    pub(crate) order: Vec<NodeId>,
    /// Envelope bytes already accounted per user → subject edge.
    pub(crate) transfers: HashMap<(SubjectId, SubjectId), usize>,
    /// Batched signed requests: recipient, sealed envelope, and the
    /// payload the recipient must recover for verification.
    pub(crate) envelopes: Vec<(SubjectId, SignedEnvelope, Vec<u8>)>,
    /// Number of dispatched sub-query requests (before batching).
    pub(crate) requests: usize,
    /// Base seed for per-(node, column, row) encryption randomness,
    /// derived from the simulator seed so distinct simulators produce
    /// distinct ciphertext nonces; identical for both execution paths.
    pub(crate) exec_seed: u64,
}

/// The distributed-execution simulator. See the crate docs for the
/// protocol it follows.
pub struct Simulator<'a> {
    catalog: &'a Catalog,
    subjects: &'a Subjects,
    policy: &'a Policy,
    parties: Vec<Party>,
    rng: StdRng,
    /// Derived once from the constructor seed; see `Prepared::exec_seed`.
    exec_seed: u64,
    /// Worker pool for intra-operator data parallelism; shared by every
    /// party loop (and the sequential interpreter), so concurrently
    /// executing parties draw threads from one budget instead of
    /// oversubscribing the machine.
    pool: WorkerPool,
}

impl<'a> Simulator<'a> {
    /// Set up the parties: one per registered subject. Base relations
    /// of `db` are distributed to their data authorities (a relation
    /// without a declared authority is held by nobody — executing a
    /// plan over it fails at that leaf).
    pub fn new(
        catalog: &'a Catalog,
        subjects: &'a Subjects,
        policy: &'a Policy,
        db: &Database,
        seed: u64,
    ) -> Simulator<'a> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parties: Vec<Party> = subjects
            .iter()
            .map(|_| Party {
                rsa: RsaKeypair::generate(&mut rng, RSA_BITS),
                ring: KeyRing::new(),
                store: Database::new(),
            })
            .collect();
        for rel in catalog.relations() {
            if let (Some(owner), Some(table)) = (subjects.authority(rel.rel), db.table(rel.rel)) {
                parties[owner.index()].store.insert(rel.rel, table.clone());
            }
        }
        Simulator {
            catalog,
            subjects,
            policy,
            parties,
            rng,
            exec_seed: seed ^ 0x6d70_715f_6578_6563, // "mpq_exec"
            pool: WorkerPool::global(),
        }
    }

    /// Replace the shared worker pool with a private one of `workers`
    /// threads (differential tests sweep worker counts; results are
    /// identical by construction).
    pub fn with_workers(mut self, workers: usize) -> Simulator<'a> {
        self.pool = WorkerPool::new(workers);
        self
    }

    /// Phases 1–3, shared by [`Simulator::run`] and
    /// [`Simulator::run_sequential`]: runtime authorization re-check,
    /// Def. 6.1 key provisioning, scheme assignment, encrypted-literal
    /// rewriting, and sealing of the signed request envelopes (batched
    /// per subject-pair edge). Consumes the simulator RNG in a fixed
    /// order so both execution paths see identical material.
    fn prepare(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
        views: &[SubjectView],
    ) -> Result<Prepared, SimError> {
        let order = ext.plan.postorder();
        let assignee_of = |id: NodeId| -> Result<SubjectId, SimError> {
            ext.assignment
                .get(&id)
                .copied()
                .ok_or(SimError::Unassigned(id))
        };

        // ---- 1. runtime authorization check (Def. 4.1 per node) -----
        for &id in &order {
            let node = ext.plan.node(id);
            let subject = assignee_of(id)?;
            if let Operator::Base { rel, .. } = &node.op {
                // Base relations never leave their authority: the
                // leaf's executor must be the storing authority, which
                // sees its own relation by construction.
                let authority = self
                    .subjects
                    .authority(*rel)
                    .ok_or(SimError::NoAuthority(*rel))?;
                if subject != authority {
                    return Err(SimError::NotTheAuthority {
                        node: id,
                        subject,
                        authority,
                    });
                }
                continue;
            }
            let view = &views[subject.index()];
            for &child in &node.children {
                if let Err(violation) = view.check(&ext.profiles[child.index()]) {
                    return Err(SimError::Unauthorized {
                        node: id,
                        subject,
                        violation,
                    });
                }
            }
            if let Err(violation) = view.check(&ext.profiles[id.index()]) {
                return Err(SimError::Unauthorized {
                    node: id,
                    subject,
                    violation,
                });
            }
        }

        // ---- 2. key provisioning (Def. 6.1) --------------------------
        let mut key_of_attr: HashMap<AttrId, u32> = HashMap::new();
        let mut computing: Vec<bool> = vec![false; self.parties.len()];
        for &id in &order {
            computing[assignee_of(id)?.index()] = true;
        }
        computing[user.index()] = true;
        for plan_key in &keys.keys {
            let material = ClusterKey::generate(&mut self.rng, plan_key.id, PAILLIER_BITS);
            for a in plan_key.attrs.iter() {
                key_of_attr.insert(a, plan_key.id);
            }
            for &holder in &plan_key.holders {
                self.parties[holder.index()].ring.insert(material.clone());
            }
            // Public Paillier halves for every computing non-holder:
            // enough to aggregate, never to decrypt.
            for (i, party) in self.parties.iter_mut().enumerate() {
                if computing[i] && !plan_key.holders.contains(&SubjectId::from_index(i)) {
                    party
                        .ring
                        .insert_public(plan_key.id, material.paillier_public());
                }
            }
        }

        // ---- 3. dispatch: signed, encrypted sub-query requests -------
        let schemes = assign_schemes(&ext.plan).map_err(|e| SimError::Scheme(e.to_string()))?;
        // Predicates over encrypted attributes need encrypted literals.
        // Conceptually the key-holding authorities rewrite their
        // conditions while preparing the sub-queries (§6); this ring
        // stands in for them at dispatch time.
        let dispatcher_ring = KeyRing::new();
        for plan_key in &keys.keys {
            if let Some(holder) = plan_key.holders.first() {
                if let Some(k) = self.parties[holder.index()].ring.get(plan_key.id) {
                    dispatcher_ring.insert(k);
                }
            }
        }
        let exec_plan = rewrite_literals(
            &ext.plan,
            self.catalog,
            &schemes,
            &key_of_attr,
            &dispatcher_ring,
            &mut self.rng,
        )
        .map_err(SimError::Rewrite)?;

        // Batch the request payloads per user → subject edge: one
        // envelope (one signature, one session key) per recipient,
        // regardless of how many sub-query regions it executes.
        let d = dispatch(ext, keys, self.catalog, self.subjects);
        let mut batches: Vec<Vec<u8>> = vec![Vec::new(); self.parties.len()];
        for req in &d.requests {
            let batch = &mut batches[req.subject.index()];
            if !batch.is_empty() {
                batch.extend_from_slice(b"\n===\n");
            }
            batch.extend_from_slice(req.sql.as_bytes());
            for key_id in &req.keys {
                batch.extend_from_slice(format!("\nkey:{key_id}").as_bytes());
            }
        }
        let mut transfers: HashMap<(SubjectId, SubjectId), usize> = HashMap::new();
        let mut envelopes: Vec<(SubjectId, SignedEnvelope, Vec<u8>)> = Vec::new();
        for (i, payload) in batches.into_iter().enumerate() {
            if payload.is_empty() {
                continue;
            }
            let to = SubjectId::from_index(i);
            let envelope = SignedEnvelope::seal(
                &mut self.rng,
                &payload,
                &self.parties[user.index()].rsa,
                &self.parties[i].rsa.public,
            );
            if to != user {
                *transfers.entry((user, to)).or_default() +=
                    envelope.wrapped_key.len() + envelope.body.len() + envelope.signature.len();
            }
            envelopes.push((to, envelope, payload));
        }

        Ok(Prepared {
            exec_plan,
            schemes,
            key_of_attr,
            order,
            transfers,
            envelopes,
            requests: d.requests.len(),
            exec_seed: self.exec_seed,
        })
    }

    /// Run `ext` across the parties on behalf of `user`, with the
    /// Def. 6.1 key establishment `keys`.
    ///
    /// This is the **concurrent** runtime: one thread per participating
    /// subject, `mpsc` channels carrying the signed request envelopes
    /// and result tables, every node executing as soon as its operands
    /// arrive at its assignee (see [`runtime`]). Results and per-edge
    /// byte counts are bit-identical to [`Simulator::run_sequential`].
    pub fn run(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
    ) -> Result<Report, SimError> {
        let views: Vec<SubjectView> = self.policy.all_views(self.catalog, self.subjects);
        let prepared = self.prepare(ext, keys, user, &views)?;
        runtime::run_concurrent(
            self.catalog,
            &self.parties,
            ext,
            &views,
            &prepared,
            user,
            &self.pool,
        )
    }

    /// Run `ext` bottom-up on the calling thread — the reference
    /// interpreter the concurrent runtime is differentially tested
    /// against. Same preparation, same results, same byte accounting;
    /// no pipeline parallelism.
    pub fn run_sequential(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
    ) -> Result<Report, SimError> {
        let views: Vec<SubjectView> = self.policy.all_views(self.catalog, self.subjects);
        let prepared = self.prepare(ext, keys, user, &views)?;
        let user_public = self.parties[user.index()].rsa.public.clone();

        // Envelopes open and verify at their recipients (here: inline,
        // since everything runs on one thread).
        for (to, envelope, expected) in &prepared.envelopes {
            let opened = envelope
                .open(&self.parties[to.index()].rsa, &user_public)
                .ok_or(SimError::Envelope { to: *to })?;
            if &opened != expected {
                return Err(SimError::Envelope { to: *to });
            }
        }

        // ---- 4. bottom-up execution, one subject at a time ----------
        let mut transfers = prepared.transfers.clone();
        let mut results: HashMap<NodeId, Table> = HashMap::new();
        for &id in &prepared.order {
            let executor = ext.assignment[&id];
            let node = prepared.exec_plan.node(id);
            // Tables produced by another subject cross the wire here:
            // account the bytes and audit every cell against the
            // receiving subject's view.
            for &child in &node.children {
                let producer = ext.assignment[&child];
                if producer != executor {
                    let table = results.get(&child).expect("child executed before parent");
                    audit::audit_transfer_with(table, &views[executor.index()], &self.pool)?;
                    *transfers.entry((producer, executor)).or_default() += table.byte_size();
                }
            }
            let party = &self.parties[executor.index()];
            let mut ctx = ExecCtx::new(
                self.catalog,
                &party.store,
                &party.ring,
                &prepared.schemes,
                &prepared.key_of_attr,
            )
            .with_pool(self.pool.clone());
            ctx.seed = prepared.exec_seed;
            let table = execute_step(&prepared.exec_plan, id, &mut results, &ctx)?;
            results.insert(id, table);
        }

        // ---- 5. deliver the result to the user ----------------------
        let root = prepared.exec_plan.root();
        let root_subject = ext.assignment[&root];
        let result = results.remove(&root).expect("root executed");
        audit::audit_transfer_with(&result, &views[user.index()], &self.pool)?;
        if root_subject != user {
            *transfers.entry((root_subject, user)).or_default() += result.byte_size();
        }

        Ok(Report {
            result,
            transfers,
            request_bytes: prepared.transfers.clone(),
            requests: prepared.requests,
        })
    }

    /// The RSA public key of a subject (for tests probing the envelope
    /// layer).
    pub fn public_key_of(&self, s: SubjectId) -> RsaPublic {
        self.parties[s.index()].rsa.public.clone()
    }

    /// `true` if `s` currently holds the full cluster key `id`
    /// (as provisioned by the last [`Simulator::run`]).
    pub fn holds_key(&self, s: SubjectId, id: u32) -> bool {
        self.parties[s.index()].ring.holds(id)
    }

    /// Revoke the full cluster key `id` from every party, keeping only
    /// the public aggregation halves. Used by tests to prove that
    /// decryption without the key fails behaviorally.
    pub fn revoke_key(&mut self, id: u32) {
        for party in &mut self.parties {
            party.ring.revoke(id);
        }
    }

    /// Which base relations a subject stores (the authority
    /// partitioning computed by [`Simulator::new`]).
    pub fn stored_relations(&self, s: SubjectId) -> Vec<RelId> {
        self.catalog
            .relations()
            .iter()
            .map(|r| r.rel)
            .filter(|&r| self.parties[s.index()].store.table(r).is_some())
            .collect()
    }
}
