//! # mpq-dist
//!
//! The distributed-execution runtime: the runnable counterpart of the
//! paper's §6 dispatch story — "each subject executes its assigned
//! sub-query and forwards encrypted results".
//!
//! Two entry points share one machinery:
//!
//! * [`Session`] — the persistent, multi-query runtime. `open` sets up
//!   one *party* per subject (RSA envelope keypair, cluster-key ring,
//!   a local store holding exactly the base relations the subject is
//!   the data authority of) and spawns one long-lived party loop per
//!   subject; `execute` then runs any number of queries over those
//!   parties, provisioning Def. 6.1 cluster keys *incrementally*
//!   through a per-session cache (only clusters the session has never
//!   seen are generated and shipped — see [`session`]).
//! * [`Simulator`] — the protocol-faithful one-query view: each `run`
//!   behaves as its own session, re-provisioning every cluster key
//!   exactly as Def. 6.1 prescribes for a standalone query. This is
//!   the entry the paper-fidelity tests drive.
//!
//! Every query, through either entry, follows the §6 protocol:
//!
//! 1. **re-verify the assignment at runtime** — every subject must be
//!    authorized (Def. 4.1) for the profile of every relation it
//!    touches, independently of what the static analysis promised
//!    (Theorems 5.1–5.3 get a second, behavioral check here);
//! 2. **provision key rings** — [`ClusterKey`](mpq_crypto::keyring::ClusterKey)
//!    material per Def. 6.1 cluster, handed to exactly the holders;
//!    every computing subject additionally receives the *public*
//!    Paillier halves, enabling homomorphic aggregation without
//!    decryption capability;
//! 3. **dispatch signed requests** — the sub-queries of
//!    `mpq_core::dispatch` travel as `[[q_S, keys]_priU]_pubS`
//!    envelopes ([`SignedEnvelope`](mpq_crypto::rsa::SignedEnvelope)),
//!    batched per subject-pair edge, opened and verified by each
//!    recipient;
//! 4. **execute concurrently** — the participating subjects' [party
//!    loops](runtime) wake; a node executes as soon as its operands'
//!    tables have arrived at its assignee, so independent subtrees of
//!    the extended plan run in parallel at different providers, over
//!    real XTEA/OPE/Paillier ciphertexts; every table crossing a
//!    subject boundary is byte-accounted and [cell-audited](audit) by
//!    the *receiving* party;
//! 5. return a [`Report`] with the final (plaintext, for the user)
//!    result and the bytes-on-the-wire per subject-pair edge.
//!
//! [`Session::execute_sequential`] / [`Simulator::run_sequential`]
//! interpret the same prepared plan bottom-up on the calling thread.
//! The two paths share all of the preparation (phases 1–3) and produce
//! bit-identical results and per-edge byte counts — a property the
//! differential tests lean on.
//!
//! A subject receiving data its view does not permit — or attempting
//! encryption/decryption with a key it does not hold — aborts the
//! query with a [`SimError`] (the session survives; see
//! [`runtime`] for how an aborted query drains).

pub mod audit;
pub(crate) mod codec;
pub mod error;
pub mod fault;
pub mod remote;
pub mod runtime;
pub mod session;
pub mod transport;

pub use audit::audit_transfer;
pub use error::SimError;
pub use fault::{FaultAction, FaultPlan, RetryPolicy};
pub use remote::{Coordinator, Server, ServerConfig};
pub use session::{Session, SessionConfig, SessionStats};
pub use transport::{EdgeRecovery, TransportError, TransportKind};

use mpq_algebra::{Catalog, RelId, SubjectId};
use mpq_core::authz::Policy;
use mpq_core::extend::ExtendedPlan;
use mpq_core::keys::KeyPlan;
use mpq_core::subjects::Subjects;
use mpq_crypto::keyring::KeyRing;
use mpq_crypto::rsa::{RsaKeypair, RsaPublic};
use mpq_exec::{Database, Table};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Paillier modulus size for simulator-generated cluster keys. Small
/// enough to keep runs fast, large enough for the fixed-point encodings
/// the execution layer produces.
pub(crate) const PAILLIER_BITS: usize = 256;

/// RSA modulus size for request envelopes (demo-grade, like the rest of
/// `mpq-crypto`).
pub(crate) const RSA_BITS: usize = 512;

/// The outcome of a distributed run.
#[derive(Clone, Debug)]
pub struct Report {
    /// The final result, as delivered to the querying user.
    pub result: Table,
    /// Bytes on the wire per directed subject-pair edge: request
    /// envelopes (user → executor) and result tables (producer →
    /// consumer, plus root → user).
    pub transfers: HashMap<(SubjectId, SubjectId), usize>,
    /// The request-envelope share of [`Report::transfers`] (user →
    /// executor dispatch bytes), kept separate so data-flow transfers
    /// can be compared against the §7 cost model, which prices plan
    /// edges, not protocol dispatch.
    pub request_bytes: HashMap<(SubjectId, SubjectId), usize>,
    /// Number of signed sub-query requests dispatched.
    pub requests: usize,
}

impl Report {
    /// Total bytes moved across all edges.
    pub fn total_bytes(&self) -> usize {
        self.transfers.values().sum()
    }

    /// Bytes of result tables per directed edge — [`Report::transfers`]
    /// with the request-envelope share subtracted. Unlike envelope
    /// bytes (whose hybrid-encryption session keys are drawn fresh per
    /// query), data-flow bytes are a deterministic function of the key
    /// material and the execution seed, which makes them the
    /// ciphertext-sensitive quantity the differential tests compare.
    pub fn data_bytes(&self) -> HashMap<(SubjectId, SubjectId), usize> {
        let mut out = self.transfers.clone();
        for (edge, bytes) in &self.request_bytes {
            match out.get_mut(edge) {
                Some(total) if *total > *bytes => *total -= bytes,
                _ => {
                    out.remove(edge);
                }
            }
        }
        out
    }

    /// Render the transfer map as sorted `from → to: bytes` lines.
    pub fn render_transfers(&self, subjects: &Subjects) -> String {
        let mut edges: Vec<_> = self.transfers.iter().collect();
        edges.sort_by_key(|((f, t), _)| (f.index(), t.index()));
        let mut out = String::new();
        for ((from, to), bytes) in edges {
            out.push_str(&format!(
                "  {} → {}: {bytes} bytes\n",
                subjects.name(*from),
                subjects.name(*to)
            ));
        }
        out
    }
}

/// One simulated subject: envelope keypair, cluster-key ring, and the
/// base relations it is the authority of.
pub(crate) struct Party {
    pub(crate) rsa: RsaKeypair,
    pub(crate) ring: KeyRing,
    pub(crate) store: Database,
}

/// The one-query-at-a-time view of the distributed runtime.
///
/// A `Simulator` is a thin wrapper over a [`Session`] that resets the
/// session's provisioning cache before every run: each
/// [`Simulator::run`] provisions fresh Def. 6.1 cluster keys and
/// re-ships every Paillier public half, exactly as the protocol
/// prescribes for a standalone query. Party identities (RSA keypairs)
/// and the party threads persist across runs — they model the
/// subjects, not the query.
///
/// Use a [`Session`] directly when consecutive queries should
/// *amortize* provisioning instead.
///
/// # Example
///
/// ```
/// use mpq_core::fixtures::RunningExample;
/// use mpq_core::keys::plan_keys;
/// use mpq_dist::Simulator;
/// use mpq_exec::Database;
///
/// let ex = RunningExample::new();
/// let mut db = Database::new();
/// db.load(&ex.catalog, "Hosp", RunningExample::sample_hosp_rows());
/// db.load(&ex.catalog, "Ins", RunningExample::sample_ins_rows());
/// let ext = ex.fig7a_extended();
/// let keys = plan_keys(&ext);
///
/// let mut sim = Simulator::new(&ex.catalog, &ex.subjects, &ex.policy, &db, 2026);
/// let report = sim.run(&ext, &keys, ex.subject("U")).unwrap();
/// assert!(!report.result.is_empty());
/// assert!(report.total_bytes() > 0);
/// ```
pub struct Simulator<'a> {
    session: Session,
    /// The constructor's borrows are cloned into the session (whose
    /// party threads need `'static` data); the lifetime parameter is
    /// kept for API stability.
    _env: PhantomData<&'a ()>,
}

impl<'a> Simulator<'a> {
    /// Set up the parties: one per registered subject. Base relations
    /// of `db` are distributed to their data authorities (a relation
    /// without a declared authority is held by nobody — executing a
    /// plan over it fails at that leaf).
    ///
    /// Convenience shim over [`Simulator::with_config`] with the
    /// default configuration (in-proc transport, shared pool,
    /// pre-flight on).
    pub fn new(
        catalog: &'a Catalog,
        subjects: &'a Subjects,
        policy: &'a Policy,
        db: &Database,
        seed: u64,
    ) -> Simulator<'a> {
        Simulator::with_config(catalog, subjects, policy, db, SessionConfig::new(seed))
    }

    /// Set up the parties with an explicit [`SessionConfig`] — the one
    /// place all runtime knobs (seed, worker pool, pre-flight,
    /// transport, receive timeout) live.
    pub fn with_config(
        catalog: &'a Catalog,
        subjects: &'a Subjects,
        policy: &'a Policy,
        db: &Database,
        config: SessionConfig,
    ) -> Simulator<'a> {
        Simulator {
            session: Session::open_with(catalog, subjects, policy, db, config),
            _env: PhantomData,
        }
    }

    /// Deprecated: use [`Simulator::with_config`] with
    /// [`SessionConfig::with_workers`]. Replaces the shared worker pool
    /// with a private one of `workers` threads (differential tests
    /// sweep worker counts; results are identical by construction).
    pub fn with_workers(mut self, workers: usize) -> Simulator<'a> {
        self.session = self.session.with_workers(workers);
        self
    }

    /// Deprecated: use [`Simulator::with_config`] with
    /// [`SessionConfig::without_preflight`]. Disables the static
    /// pre-flight verifier, leaving only the dynamic defenses.
    pub fn without_preflight(mut self) -> Simulator<'a> {
        self.session = self.session.without_preflight();
        self
    }

    /// Run `ext` across the parties on behalf of `user`, with the
    /// Def. 6.1 key establishment `keys`, as an independent one-query
    /// session (full key provisioning, fresh material).
    ///
    /// This is the **concurrent** runtime: one party loop per
    /// participating subject, mailboxes carrying the signed request
    /// envelopes and result tables, every node executing as soon as its
    /// operands arrive at its assignee (see [`runtime`]). Results and
    /// per-edge byte counts are bit-identical to
    /// [`Simulator::run_sequential`].
    pub fn run(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
    ) -> Result<Report, SimError> {
        self.session.reset_provisioning();
        self.session.execute(ext, keys, user)
    }

    /// Run `ext` bottom-up on the calling thread — the reference
    /// interpreter the concurrent runtime is differentially tested
    /// against. Same preparation, same results, same byte accounting;
    /// no pipeline parallelism.
    pub fn run_sequential(
        &mut self,
        ext: &ExtendedPlan,
        keys: &KeyPlan,
        user: SubjectId,
    ) -> Result<Report, SimError> {
        self.session.reset_provisioning();
        self.session.execute_sequential(ext, keys, user)
    }

    /// The RSA public key of a subject (for tests probing the envelope
    /// layer).
    pub fn public_key_of(&self, s: SubjectId) -> RsaPublic {
        self.session.public_key_of(s)
    }

    /// `true` if `s` currently holds the full cluster key `id`
    /// (as provisioned by the last [`Simulator::run`]).
    pub fn holds_key(&self, s: SubjectId, id: u32) -> bool {
        self.session.holds_key(s, id)
    }

    /// Revoke the full cluster key `id` from every party, keeping only
    /// the public aggregation halves. Used by tests to prove that
    /// decryption without the key fails behaviorally.
    pub fn revoke_key(&mut self, id: u32) {
        self.session.revoke_key(id);
    }

    /// Which base relations a subject stores (the authority
    /// partitioning computed by [`Simulator::new`]).
    pub fn stored_relations(&self, s: SubjectId) -> Vec<RelId> {
        self.session.stored_relations(s)
    }
}
