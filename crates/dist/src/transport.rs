//! The wire: how data-plane messages travel between parties.
//!
//! The paper's §2/Fig. 8 architecture is a set of *autonomous
//! providers* exchanging signed sub-queries and audited result tables
//! over a network. This module abstracts that wire behind the
//! `Transport` trait — sending one `Msg` to one subject for one
//! query epoch — with two implementations:
//!
//! * `InProcTransport` — the original in-process mailboxes: a
//!   `send` is an `mpsc` enqueue onto the destination party's
//!   persistent mailbox. Zero serialization, zero sockets.
//! * `TcpTransport` + `TcpHub` — real length-prefixed TCP over
//!   `std::net`. Every party binds a `TcpHub` (listener + accept
//!   loop); a `send` lazily connects to the destination's hub, then
//!   writes `[u32 len][frame]` records encoded by `crate::codec`.
//!   The receiving hub decodes frames and injects them into the same
//!   mailbox the in-proc transport would have used, so the party loop
//!   in [`crate::runtime`] is transport-agnostic.
//!
//! Per-edge byte accounting is **logical** (the receiver accounts
//! `table.byte_size()` of every table that crosses a subject
//! boundary), so the two transports report bit-identical transfer
//! maps — the property the TCP differential test pins.
//!
//! The `Control` type carries the `mpq-server` *control plane*
//! (hello/provision/execute/done frames between a coordinator and a
//! server process) over the same framed codec; see
//! [`crate::remote`].
//!
//! All socket use in this crate is confined to this module
//! (`mpq-lint` enforces it), as are the connect/read timeouts that
//! turn a dead peer into a typed [`TransportError`] instead of a
//! hang.

use crate::codec::{decode_frame, encode_frame, Frame};
use crate::runtime::{Msg, PartyMsg};
use mpq_algebra::SubjectId;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which wire a session runs its data plane over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process `mpsc` mailboxes (the default; fastest, no sockets).
    #[default]
    InProc,
    /// Loopback TCP: every party binds a real listener and messages
    /// travel as length-prefixed frames through the OS socket stack.
    Tcp,
}

/// Why a wire operation failed. Carries rendered details (not
/// `io::Error`) so it stays `Clone + PartialEq + Eq` like every other
/// [`SimError`](crate::SimError) cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Binding a listener failed.
    Bind {
        /// Requested address.
        addr: String,
        /// OS error rendering.
        detail: String,
    },
    /// Connecting to a peer failed (refused, unreachable, or timed
    /// out).
    Connect {
        /// Peer address.
        addr: String,
        /// OS error rendering.
        detail: String,
    },
    /// Writing to an established connection failed (peer died
    /// mid-query).
    Send {
        /// Destination subject.
        to: SubjectId,
        /// OS error rendering.
        detail: String,
    },
    /// Reading from a connection failed.
    Recv {
        /// OS error rendering.
        detail: String,
    },
    /// A frame arrived but did not decode (truncation, bad tag,
    /// trailing bytes) or was not valid in its protocol state.
    Frame {
        /// What was malformed.
        detail: String,
    },
    /// Nothing arrived within the configured receive window — a peer
    /// died (or stalled) mid-query and the epoch is aborted instead of
    /// hanging.
    Timeout {
        /// The expired window, in milliseconds.
        millis: u64,
    },
    /// A remote party reported failing its share of the query; the
    /// message is the Display rendering of its error.
    Peer {
        /// The failing subject.
        from: SubjectId,
        /// Its rendered error.
        message: String,
    },
    /// The channel or connection closed before the operation.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Bind { addr, detail } => write!(f, "bind {addr} failed: {detail}"),
            TransportError::Connect { addr, detail } => {
                write!(f, "connect to {addr} failed: {detail}")
            }
            TransportError::Send { to, detail } => write!(f, "send to {to} failed: {detail}"),
            TransportError::Recv { detail } => write!(f, "receive failed: {detail}"),
            TransportError::Frame { detail } => write!(f, "malformed frame: {detail}"),
            TransportError::Timeout { millis } => {
                write!(f, "no message within {millis} ms — peer dead or stalled")
            }
            TransportError::Peer { from, message } => {
                write!(f, "party {from} failed its share: {message}")
            }
            TransportError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Sending half of the wire, as seen by one party's loop: deliver one
/// data-plane message to one subject for one query epoch. Receiving
/// stays the party's mailbox (`Receiver<PartyMsg>`) regardless of
/// transport — TCP hubs feed the same mailbox the in-proc transport
/// enqueues to.
pub(crate) trait Transport: Send + Sync {
    /// Deliver `msg` to `to` for query `epoch`.
    fn send(&self, to: SubjectId, epoch: u64, msg: Msg) -> Result<(), TransportError>;
}

/// The in-process wire: a clone of every party's mailbox sender.
pub(crate) struct InProcTransport {
    txs: Vec<Sender<PartyMsg>>,
}

impl InProcTransport {
    pub(crate) fn new(txs: Vec<Sender<PartyMsg>>) -> InProcTransport {
        InProcTransport { txs }
    }
}

impl Transport for InProcTransport {
    fn send(&self, to: SubjectId, epoch: u64, msg: Msg) -> Result<(), TransportError> {
        self.txs
            .get(to.index())
            .ok_or(TransportError::Closed)?
            .send(PartyMsg::Data { epoch, msg })
            .map_err(|_| TransportError::Closed)
    }
}

/// Frames larger than this are rejected as malformed before
/// allocation: no legitimate table in this repo approaches it, and a
/// corrupt length prefix must not look like a 4 GiB allocation
/// request.
const MAX_FRAME: usize = 1 << 30;

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let body = encode_frame(frame);
    stream.write_all(&(body.len() as u32).to_be_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

/// Read one `[u32 len][frame]` record. `Ok(None)` is clean EOF.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Frame>, TransportError> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Err(TransportError::Timeout { millis: 0 })
        }
        Err(e) => {
            return Err(TransportError::Recv {
                detail: e.to_string(),
            })
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::Frame {
            detail: format!("{len}-byte frame exceeds the {MAX_FRAME}-byte cap"),
        });
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|e| TransportError::Recv {
            detail: e.to_string(),
        })?;
    decode_frame(&body)
        .ok_or(TransportError::Frame {
            detail: format!("{len}-byte frame did not decode"),
        })
        .map(Some)
}

/// The TCP sending half for one party: lazily-established, cached
/// connections to every peer's `TcpHub`. The first frame on a fresh
/// connection is `Peer { from }` so the receiving hub knows which
/// mailbox edge the traffic belongs to (asserted identity — transport
/// authentication is out of scope; the protocol's integrity rests on
/// the signed request envelopes and the cell-level receive audit, not
/// on the socket).
pub(crate) struct TcpTransport {
    me: SubjectId,
    /// Peer subject → `host:port` of its hub.
    peers: HashMap<SubjectId, String>,
    conns: Mutex<HashMap<SubjectId, TcpStream>>,
    connect_timeout: Duration,
}

impl TcpTransport {
    pub(crate) fn new(
        me: SubjectId,
        peers: HashMap<SubjectId, String>,
        connect_timeout: Duration,
    ) -> TcpTransport {
        TcpTransport {
            me,
            peers,
            conns: Mutex::new(HashMap::new()),
            connect_timeout,
        }
    }

    fn connect(&self, to: SubjectId) -> Result<TcpStream, TransportError> {
        let addr = self.peers.get(&to).ok_or(TransportError::Closed)?;
        let parsed: Vec<std::net::SocketAddr> =
            std::net::ToSocketAddrs::to_socket_addrs(addr.as_str())
                .map_err(|e| TransportError::Connect {
                    addr: addr.clone(),
                    detail: e.to_string(),
                })?
                .collect();
        let target = parsed.first().ok_or(TransportError::Connect {
            addr: addr.clone(),
            detail: "address resolved to nothing".to_string(),
        })?;
        let mut stream = TcpStream::connect_timeout(target, self.connect_timeout).map_err(|e| {
            TransportError::Connect {
                addr: addr.clone(),
                detail: e.to_string(),
            }
        })?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, &Frame::Peer { from: self.me }).map_err(|e| {
            TransportError::Send {
                to,
                detail: e.to_string(),
            }
        })?;
        Ok(stream)
    }
}

impl Transport for TcpTransport {
    fn send(&self, to: SubjectId, epoch: u64, msg: Msg) -> Result<(), TransportError> {
        let mut conns = self.conns.lock().expect("transport lock poisoned");
        if let std::collections::hash_map::Entry::Vacant(slot) = conns.entry(to) {
            slot.insert(self.connect(to)?);
        }
        let stream = conns.get_mut(&to).expect("just inserted");
        let r = write_frame(stream, &Frame::Data { epoch, msg });
        if let Err(e) = r {
            // A dead connection never comes back; drop it so a later
            // send (e.g. the next query) can re-establish.
            conns.remove(&to);
            return Err(TransportError::Send {
                to,
                detail: e.to_string(),
            });
        }
        Ok(())
    }
}

/// The receiving half of the TCP wire for one party: a bound listener
/// plus an accept loop that turns incoming framed records into
/// [`PartyMsg::Data`] on the party's mailbox. Control connections
/// (first frame `Hello`) are handed to the `control` channel instead —
/// that is how an `mpq-server` process receives its coordinator.
pub(crate) struct TcpHub {
    addr: String,
    closing: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpHub {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start the
    /// accept loop.
    pub(crate) fn bind(
        addr: &str,
        inbox: Sender<PartyMsg>,
        control: Option<Sender<Control>>,
    ) -> Result<TcpHub, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|e| TransportError::Bind {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        let local = listener
            .local_addr()
            .map_err(|e| TransportError::Bind {
                addr: addr.to_string(),
                detail: e.to_string(),
            })?
            .to_string();
        let closing = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&closing);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                stream.set_nodelay(true).ok();
                let inbox = inbox.clone();
                let control = control.clone();
                // Pump threads are detached: they exit on EOF when the
                // sending peer drops its connection cache, which the
                // teardown ordering guarantees happens before the hub
                // itself is considered gone.
                std::thread::spawn(move || pump(stream, inbox, control));
            }
        });
        Ok(TcpHub {
            addr: local,
            closing,
            accept: Some(accept),
        })
    }

    /// The actually-bound `host:port` (resolves port 0).
    pub(crate) fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for TcpHub {
    fn drop(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(addr) = self.addr.parse::<std::net::SocketAddr>() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Per-connection receive loop: route data frames to the mailbox,
/// control connections to the control channel, drop anything else.
fn pump(mut stream: TcpStream, inbox: Sender<PartyMsg>, control: Option<Sender<Control>>) {
    match read_frame(&mut stream) {
        Ok(Some(Frame::Peer { .. })) => loop {
            match read_frame(&mut stream) {
                Ok(Some(Frame::Data { epoch, msg })) => {
                    if inbox.send(PartyMsg::Data { epoch, msg }).is_err() {
                        return;
                    }
                }
                // Clean EOF, a dead peer, or a non-data frame: either
                // way this connection is done. The *absence* of an
                // expected message is handled where it is observable —
                // the party loop's receive timeout.
                _ => return,
            }
        },
        Ok(Some(hello @ Frame::Hello { .. })) => {
            if let Some(control) = control {
                let _ = control.send(Control {
                    stream,
                    pending: Some(hello),
                });
            }
        }
        _ => {}
    }
}

/// One framed control connection (coordinator ↔ server), used by
/// [`crate::remote`]. Keeps all socket handling inside this module:
/// callers see only [`Frame`] values and typed errors.
pub(crate) struct Control {
    stream: TcpStream,
    /// A frame already consumed by the hub's dispatcher (the `Hello`),
    /// replayed on the first `recv`.
    pending: Option<Frame>,
}

impl Control {
    /// Connect to a server's hub with a connect timeout.
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<Control, TransportError> {
        let parsed: Vec<std::net::SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(addr)
            .map_err(|e| TransportError::Connect {
                addr: addr.to_string(),
                detail: e.to_string(),
            })?
            .collect();
        let target = parsed.first().ok_or(TransportError::Connect {
            addr: addr.to_string(),
            detail: "address resolved to nothing".to_string(),
        })?;
        let stream =
            TcpStream::connect_timeout(target, timeout).map_err(|e| TransportError::Connect {
                addr: addr.to_string(),
                detail: e.to_string(),
            })?;
        stream.set_nodelay(true).ok();
        Ok(Control {
            stream,
            pending: None,
        })
    }

    /// Send one control frame.
    pub(crate) fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        write_frame(&mut self.stream, frame).map_err(|e| TransportError::Recv {
            detail: e.to_string(),
        })
    }

    /// Receive one control frame, waiting at most `timeout` (or
    /// indefinitely when `None`). EOF surfaces as
    /// [`TransportError::Closed`].
    pub(crate) fn recv(&mut self, timeout: Option<Duration>) -> Result<Frame, TransportError> {
        if let Some(f) = self.pending.take() {
            return Ok(f);
        }
        self.stream.set_read_timeout(timeout).ok();
        let r = read_frame(&mut self.stream);
        self.stream.set_read_timeout(None).ok();
        match r {
            Ok(Some(f)) => Ok(f),
            Ok(None) => Err(TransportError::Closed),
            Err(TransportError::Timeout { .. }) => Err(TransportError::Timeout {
                millis: timeout.map(|d| d.as_millis() as u64).unwrap_or(0),
            }),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_exec::Table;
    use std::sync::mpsc::channel;

    #[test]
    fn tcp_hub_delivers_data_frames_to_the_mailbox() {
        let (tx, rx) = channel();
        let hub = TcpHub::bind("127.0.0.1:0", tx, None).expect("bind loopback");
        let me = SubjectId(1);
        let peers: HashMap<SubjectId, String> = [(SubjectId(0), hub.addr().to_string())]
            .into_iter()
            .collect();
        let wire = TcpTransport::new(me, peers, Duration::from_secs(2));
        let table = Table::from_rows(
            vec![mpq_algebra::AttrId(0)],
            vec![vec![mpq_algebra::Value::Int(7)]],
        );
        wire.send(
            SubjectId(0),
            3,
            Msg::Result {
                from: me,
                table: table.clone(),
            },
        )
        .expect("loopback send");
        match rx.recv_timeout(Duration::from_secs(5)).expect("delivered") {
            PartyMsg::Data {
                epoch: 3,
                msg: Msg::Result { from, table: t },
            } => {
                assert_eq!(from, me);
                assert_eq!(t.to_rows(), table.to_rows());
            }
            _ => panic!("wrong delivery"),
        }
    }

    #[test]
    fn connecting_to_a_dead_peer_is_a_typed_error() {
        // Bind-then-drop guarantees a port with no listener.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let peers: HashMap<SubjectId, String> = [(SubjectId(0), dead)].into_iter().collect();
        let wire = TcpTransport::new(SubjectId(1), peers, Duration::from_millis(500));
        let err = wire
            .send(SubjectId(0), 1, Msg::Abort)
            .expect_err("no listener");
        assert!(matches!(err, TransportError::Connect { .. }), "got {err:?}");
    }

    #[test]
    fn control_roundtrip_and_timeout() {
        let (tx, _rx) = channel();
        let (ctl_tx, ctl_rx) = channel();
        let hub = TcpHub::bind("127.0.0.1:0", tx, Some(ctl_tx)).expect("bind loopback");
        let mut client = Control::connect(hub.addr(), Duration::from_secs(2)).expect("connect");
        let public = {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(1);
            mpq_crypto::rsa::RsaKeypair::generate(&mut rng, 512).public
        };
        client
            .send(&Frame::Hello {
                user: SubjectId(0),
                public: public.clone(),
            })
            .expect("send hello");
        let mut server = ctl_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("control conn surfaced");
        match server.recv(Some(Duration::from_secs(2))).expect("hello") {
            Frame::Hello { user, public: p } => {
                assert_eq!(user, SubjectId(0));
                assert_eq!(p.n, public.n);
            }
            _ => panic!("expected hello"),
        }
        // Nothing else was sent: a bounded recv times out, typed.
        let err = server
            .recv(Some(Duration::from_millis(200)))
            .expect_err("no frame pending");
        assert!(matches!(err, TransportError::Timeout { .. }), "got {err:?}");
    }
}
