//! The wire: how data-plane messages travel between parties.
//!
//! The paper's §2/Fig. 8 architecture is a set of *autonomous
//! providers* exchanging signed sub-queries and audited result tables
//! over a network. This module abstracts that wire behind the
//! `Transport` trait — one *delivery attempt* of one `Msg` to one
//! subject for one query epoch — with two implementations:
//!
//! * `InProcTransport` — the original in-process mailboxes: a
//!   `send` is an `mpsc` enqueue onto the destination party's
//!   persistent mailbox. Zero serialization, zero sockets.
//! * `TcpTransport` + `TcpHub` — real length-prefixed TCP over
//!   `std::net`. Every party binds a `TcpHub` (listener + accept
//!   loop); a `send` lazily connects to the destination's hub, then
//!   writes `[u32 len][frame]` records encoded by `crate::codec`.
//!   The receiving hub decodes frames and injects them into the same
//!   mailbox the in-proc transport would have used, so the party loop
//!   in [`crate::runtime`] is transport-agnostic.
//!
//! Per-edge byte accounting is **logical** (the receiver accounts
//! `table.byte_size()` of every table that crosses a subject
//! boundary), so the two transports report bit-identical transfer
//! maps — the property the TCP differential test pins.
//!
//! Parties do not use a `Transport` directly: they hold a `Wire`
//! (crate-private), which assigns every logical message a per-edge
//! sequence number, consults the session's [`FaultPlan`] before each
//! attempt, and retries failed attempts under a bounded
//! [`RetryPolicy`] with seeded
//! decorrelated-jitter backoff. Injected failures are *synthesized by
//! the wire* (not the backend), so the in-proc and TCP transports
//! surface byte-identical errors and recovery traces for the same
//! schedule. The receiver dedups on `(from, seq)` (see
//! [`crate::runtime`]), which makes re-sends idempotent: a
//! [`FaultAction::Reset`](crate::fault::FaultAction) delivers *and*
//! fails the sender, forcing the duplicate the dedup exists for.
//!
//! The `Control` type carries the `mpq-server` *control plane*
//! (hello/provision/execute/done frames between a coordinator and a
//! server process) over the same framed codec; see
//! [`crate::remote`].
//!
//! All socket use in this crate is confined to this module
//! (`mpq-lint` enforces it), as are the connect/read timeouts that
//! turn a dead peer into a typed [`TransportError`] instead of a
//! hang.

use crate::codec::{decode_frame, encode_frame, Frame};
use crate::fault::{splitmix64, FaultAction, FaultPlan, RetryPolicy};
use crate::runtime::{Msg, PartyMsg};
use mpq_algebra::SubjectId;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which wire a session runs its data plane over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process `mpsc` mailboxes (the default; fastest, no sockets).
    #[default]
    InProc,
    /// Loopback TCP: every party binds a real listener and messages
    /// travel as length-prefixed frames through the OS socket stack.
    Tcp,
}

/// Why a wire operation failed. Carries rendered details (not
/// `io::Error`) so it stays `Clone + PartialEq + Eq` like every other
/// [`SimError`](crate::SimError) cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Binding a listener failed.
    Bind {
        /// Requested address.
        addr: String,
        /// OS error rendering.
        detail: String,
    },
    /// Connecting to a peer failed (refused, unreachable, or timed
    /// out).
    Connect {
        /// Peer address.
        addr: String,
        /// OS error rendering.
        detail: String,
    },
    /// Writing to an established connection failed (peer died
    /// mid-query).
    Send {
        /// Destination subject.
        to: SubjectId,
        /// OS error rendering.
        detail: String,
    },
    /// Reading from a connection failed.
    Recv {
        /// OS error rendering.
        detail: String,
    },
    /// A frame arrived but did not decode (truncation, bad tag,
    /// trailing bytes) or was not valid in its protocol state.
    Frame {
        /// What was malformed.
        detail: String,
    },
    /// Nothing arrived within the configured receive window — a peer
    /// died (or stalled) mid-query and the epoch is aborted instead of
    /// hanging.
    Timeout {
        /// The expired window, in milliseconds.
        millis: u64,
    },
    /// A remote party reported failing its share of the query; the
    /// message is the Display rendering of its error.
    Peer {
        /// The failing subject.
        from: SubjectId,
        /// Its rendered error.
        message: String,
    },
    /// The channel or connection closed before the operation.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Bind { addr, detail } => write!(f, "bind {addr} failed: {detail}"),
            TransportError::Connect { addr, detail } => {
                write!(f, "connect to {addr} failed: {detail}")
            }
            TransportError::Send { to, detail } => write!(f, "send to {to} failed: {detail}"),
            TransportError::Recv { detail } => write!(f, "receive failed: {detail}"),
            TransportError::Frame { detail } => write!(f, "malformed frame: {detail}"),
            TransportError::Timeout { millis } => {
                write!(f, "no message within {millis} ms — peer dead or stalled")
            }
            TransportError::Peer { from, message } => {
                write!(f, "party {from} failed its share: {message}")
            }
            TransportError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// How the [`Wire`] asks a backend to treat one delivery attempt.
/// `Deliver` is the honest path; the rest damage the attempt in the
/// backend's *native* failure mode (a TCP truncate really poisons the
/// socket) while the wire synthesizes the uniform sender-visible
/// error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WireOp {
    /// Deliver the frame normally.
    Deliver,
    /// Deliver nothing; the frame vanishes in flight.
    Drop,
    /// Deliver a damaged partial frame and kill the connection.
    Truncate,
    /// Deliver the frame, then kill the connection — the sender cannot
    /// tell delivery succeeded and will re-send (a duplicate).
    Reset,
}

/// Sending half of the wire, as seen by one party's loop: **one
/// attempt** to deliver one data-plane message to one subject for one
/// query epoch. Retries, fault injection, and sequence numbering live
/// in [`Wire`], which is what parties actually hold. Receiving stays
/// the party's mailbox (`Receiver<PartyMsg>`) regardless of transport
/// — TCP hubs feed the same mailbox the in-proc transport enqueues
/// to.
pub(crate) trait Transport: Send + Sync {
    /// Make one delivery attempt of `msg` to `to` for query `epoch`,
    /// applying `op`. Backends return their own errors only for *real*
    /// failures; injected ones are reported by the wire.
    fn attempt(
        &self,
        to: SubjectId,
        epoch: u64,
        msg: &Msg,
        op: WireOp,
    ) -> Result<(), TransportError>;
}

/// The in-process wire: a clone of every party's mailbox sender.
pub(crate) struct InProcTransport {
    txs: Vec<Sender<PartyMsg>>,
}

impl InProcTransport {
    pub(crate) fn new(txs: Vec<Sender<PartyMsg>>) -> InProcTransport {
        InProcTransport { txs }
    }

    fn enqueue(&self, to: SubjectId, epoch: u64, msg: Msg) -> Result<(), TransportError> {
        self.txs
            .get(to.index())
            .ok_or(TransportError::Closed)?
            .send(PartyMsg::Data { epoch, msg })
            .map_err(|_| TransportError::Closed)
    }
}

impl Transport for InProcTransport {
    fn attempt(
        &self,
        to: SubjectId,
        epoch: u64,
        msg: &Msg,
        op: WireOp,
    ) -> Result<(), TransportError> {
        match op {
            // Reset delivers first (the duplicate-maker); mailboxes
            // have no connection state left to damage afterwards.
            WireOp::Deliver | WireOp::Reset => self.enqueue(to, epoch, msg.clone()),
            // Dropped or truncated frames simply never reach the
            // mailbox — exactly what the receiver of a vanished or
            // undecodable TCP frame observes.
            WireOp::Drop | WireOp::Truncate => Ok(()),
        }
    }
}

/// Frames larger than this are rejected as malformed before
/// allocation: no legitimate table in this repo approaches it, and a
/// corrupt length prefix must not look like a 4 GiB allocation
/// request.
const MAX_FRAME: usize = 1 << 30;

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let body = encode_frame(frame);
    stream.write_all(&(body.len() as u32).to_be_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

/// Read one `[u32 len][frame]` record. `Ok(None)` is clean EOF.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Frame>, TransportError> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Err(TransportError::Timeout { millis: 0 })
        }
        Err(e) => {
            return Err(TransportError::Recv {
                detail: e.to_string(),
            })
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::Frame {
            detail: format!("{len}-byte frame exceeds the {MAX_FRAME}-byte cap"),
        });
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|e| TransportError::Recv {
            detail: e.to_string(),
        })?;
    decode_frame(&body)
        .ok_or(TransportError::Frame {
            detail: format!("{len}-byte frame did not decode"),
        })
        .map(Some)
}

/// The TCP sending half for one party: lazily-established, cached
/// connections to every peer's `TcpHub`. The first frame on a fresh
/// connection is `Peer { from }` so the receiving hub knows which
/// mailbox edge the traffic belongs to (asserted identity — transport
/// authentication is out of scope; the protocol's integrity rests on
/// the signed request envelopes and the cell-level receive audit, not
/// on the socket).
pub(crate) struct TcpTransport {
    me: SubjectId,
    /// Peer subject → `host:port` of its hub.
    peers: HashMap<SubjectId, String>,
    conns: Mutex<HashMap<SubjectId, TcpStream>>,
    connect_timeout: Duration,
}

impl TcpTransport {
    pub(crate) fn new(
        me: SubjectId,
        peers: HashMap<SubjectId, String>,
        connect_timeout: Duration,
    ) -> TcpTransport {
        TcpTransport {
            me,
            peers,
            conns: Mutex::new(HashMap::new()),
            connect_timeout,
        }
    }

    fn connect(&self, to: SubjectId) -> Result<TcpStream, TransportError> {
        let addr = self.peers.get(&to).ok_or(TransportError::Closed)?;
        let parsed: Vec<std::net::SocketAddr> =
            std::net::ToSocketAddrs::to_socket_addrs(addr.as_str())
                .map_err(|e| TransportError::Connect {
                    addr: addr.clone(),
                    detail: e.to_string(),
                })?
                .collect();
        let target = parsed.first().ok_or(TransportError::Connect {
            addr: addr.clone(),
            detail: "address resolved to nothing".to_string(),
        })?;
        let mut stream = TcpStream::connect_timeout(target, self.connect_timeout).map_err(|e| {
            TransportError::Connect {
                addr: addr.clone(),
                detail: e.to_string(),
            }
        })?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, &Frame::Peer { from: self.me }).map_err(|e| {
            TransportError::Send {
                to,
                detail: e.to_string(),
            }
        })?;
        Ok(stream)
    }

    /// Write one data frame on the cached connection to `to`,
    /// (re-)establishing it if needed. `kill_after` severs the
    /// connection *after* a successful write — the `Reset` injection.
    fn write_data(
        &self,
        to: SubjectId,
        epoch: u64,
        msg: &Msg,
        kill_after: bool,
    ) -> Result<(), TransportError> {
        let mut conns = self.conns.lock().expect("transport lock poisoned");
        if let std::collections::hash_map::Entry::Vacant(slot) = conns.entry(to) {
            slot.insert(self.connect(to)?);
        }
        let stream = conns.get_mut(&to).expect("just inserted");
        let r = write_frame(
            stream,
            &Frame::Data {
                epoch,
                msg: msg.clone(),
            },
        );
        if let Err(e) = r {
            // A dead connection never comes back; drop it so a later
            // attempt (the retry, or the next query) can re-establish.
            conns.remove(&to);
            return Err(TransportError::Send {
                to,
                detail: e.to_string(),
            });
        }
        if kill_after {
            if let Some(s) = conns.remove(&to) {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        Ok(())
    }

    /// Write a deliberately short frame (a valid length prefix, half a
    /// body) and sever the connection — the receiving pump hits EOF
    /// mid-body, discards the garbage, and the edge needs a fresh
    /// connection. Real-failure errors during the damage are ignored:
    /// the wire reports the injected error either way.
    fn write_truncated(&self, to: SubjectId, epoch: u64, msg: &Msg) {
        let mut conns = self.conns.lock().expect("transport lock poisoned");
        if let std::collections::hash_map::Entry::Vacant(slot) = conns.entry(to) {
            match self.connect(to) {
                Ok(conn) => {
                    slot.insert(conn);
                }
                Err(_) => return,
            }
        }
        if let Some(mut stream) = conns.remove(&to) {
            let body = encode_frame(&Frame::Data {
                epoch,
                msg: msg.clone(),
            });
            let _ = stream.write_all(&(body.len() as u32).to_be_bytes());
            let _ = stream.write_all(&body[..body.len() / 2]);
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Transport for TcpTransport {
    fn attempt(
        &self,
        to: SubjectId,
        epoch: u64,
        msg: &Msg,
        op: WireOp,
    ) -> Result<(), TransportError> {
        match op {
            WireOp::Deliver => self.write_data(to, epoch, msg, false),
            WireOp::Reset => self.write_data(to, epoch, msg, true),
            WireOp::Truncate => {
                self.write_truncated(to, epoch, msg);
                Ok(())
            }
            WireOp::Drop => Ok(()),
        }
    }
}

/// Per-edge recovery counters, exposed through
/// [`Session::recovery_stats`](crate::Session::recovery_stats) (and
/// the coordinator's equivalent). `attempts` counts every delivery
/// attempt, `retries` the re-sends after a failed attempt, `injected`
/// the attempts the fault plan damaged. The counts are a function of
/// the fault schedule alone — identical across transport backends —
/// which is what the retry-determinism proptest pins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeRecovery {
    /// Delivery attempts (logical sends + retries).
    pub attempts: u64,
    /// Re-sends after a failed attempt.
    pub retries: u64,
    /// Attempts damaged by the fault plan.
    pub injected: u64,
}

/// Shared recovery counters for all wires of one session or server.
#[derive(Default)]
pub(crate) struct WireStats {
    edges: Mutex<HashMap<(SubjectId, SubjectId), EdgeRecovery>>,
}

impl WireStats {
    fn bump(&self, from: SubjectId, to: SubjectId, f: impl FnOnce(&mut EdgeRecovery)) {
        let mut edges = self.edges.lock().expect("stats lock poisoned");
        f(edges.entry((from, to)).or_default());
    }

    pub(crate) fn snapshot(&self) -> HashMap<(SubjectId, SubjectId), EdgeRecovery> {
        self.edges.lock().expect("stats lock poisoned").clone()
    }

    pub(crate) fn reset(&self) {
        self.edges.lock().expect("stats lock poisoned").clear();
    }

    pub(crate) fn total_retries(&self) -> u64 {
        self.edges
            .lock()
            .expect("stats lock poisoned")
            .values()
            .map(|e| e.retries)
            .sum()
    }
}

/// The mutable fault-injection state shared by every wire of a
/// session: the active plan plus per-edge attempt/injection counters.
/// Swapping the plan (chaos tests sweep schedules over one long-lived
/// session) resets the counters so each schedule starts from
/// `frame_index = 0`.
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    /// Per directed edge: (next attempt index, faults injected).
    counters: HashMap<(SubjectId, SubjectId), (u64, u32)>,
}

impl FaultState {
    pub(crate) fn new(plan: Option<FaultPlan>) -> FaultState {
        FaultState {
            plan,
            counters: HashMap::new(),
        }
    }

    pub(crate) fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
        self.counters.clear();
    }

    /// The action for the next attempt on `from → to`, consuming one
    /// attempt index and enforcing the plan's per-edge injection cap.
    pub(crate) fn next_action(&mut self, from: SubjectId, to: SubjectId) -> FaultAction {
        let Some(plan) = &self.plan else {
            return FaultAction::Deliver;
        };
        let (idx, injected) = self.counters.entry((from, to)).or_default();
        let index = *idx;
        *idx += 1;
        if plan.max_per_edge.is_some_and(|cap| *injected >= cap) {
            return FaultAction::Deliver;
        }
        let action = plan.decide(from, to, index);
        if action != FaultAction::Deliver {
            *injected += 1;
        }
        action
    }
}

/// What a party actually sends through: sequence numbering, fault
/// consultation, and the bounded retry loop over a [`Transport`]
/// backend.
///
/// Every logical message gets a per-edge monotone `seq` assigned
/// exactly once — retries re-send the *same* sequence number, and the
/// receiver drops duplicates (see [`crate::runtime`]), which is what
/// makes re-sending after an ambiguous failure (`Reset`) safe. A
/// failed attempt backs off with seeded decorrelated jitter and tries
/// again until the [`RetryPolicy`] budget is spent; the last typed
/// error then surfaces through the existing abort path.
pub(crate) struct Wire {
    me: SubjectId,
    /// Session seed share for deterministic backoff jitter.
    seed: u64,
    inner: Arc<dyn Transport>,
    faults: Arc<Mutex<FaultState>>,
    retry: RetryPolicy,
    stats: Arc<WireStats>,
    /// Next sequence number per destination.
    seqs: Mutex<HashMap<SubjectId, u64>>,
}

impl Wire {
    pub(crate) fn new(
        me: SubjectId,
        seed: u64,
        inner: Arc<dyn Transport>,
        faults: Arc<Mutex<FaultState>>,
        retry: RetryPolicy,
        stats: Arc<WireStats>,
    ) -> Wire {
        Wire {
            me,
            seed,
            inner,
            faults,
            retry,
            stats,
            seqs: Mutex::new(HashMap::new()),
        }
    }

    /// Send one logical data-plane message: assign its sequence
    /// number, then drive delivery attempts until one succeeds or the
    /// retry budget is spent.
    pub(crate) fn send(
        &self,
        to: SubjectId,
        epoch: u64,
        mut msg: Msg,
    ) -> Result<(), TransportError> {
        {
            let mut seqs = self.seqs.lock().expect("seq lock poisoned");
            let next = seqs.entry(to).or_insert(0);
            msg.set_seq(*next);
            *next += 1;
        }
        self.send_with_retry(to, epoch, &msg)
    }

    /// Best-effort abort broadcast: a single fault-exempt attempt.
    /// Abort *is* the recovery path — damaging it would only delay
    /// epoch teardown (receive timeouts already cover a genuinely lost
    /// abort over TCP), and exempting it keeps in-proc sessions
    /// hang-free even without a configured timeout.
    pub(crate) fn send_abort(&self, to: SubjectId, epoch: u64) {
        let _ = self.inner.attempt(to, epoch, &Msg::Abort, WireOp::Deliver);
    }

    /// The bounded retry loop: every attempt consults the fault plan,
    /// every failure consumes one unit of the `max_attempts` budget,
    /// and the sleeps between attempts are decorrelated jitter seeded
    /// from `(seed, edge, attempt)` — fully reproducible.
    fn send_with_retry(&self, to: SubjectId, epoch: u64, msg: &Msg) -> Result<(), TransportError> {
        let max_attempts = self.retry.max_attempts.max(1);
        let edge_seed =
            splitmix64(self.seed ^ ((self.me.index() as u64) << 32) ^ to.index() as u64);
        let mut prev_ms = self.retry.base_ms;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let action = {
                let mut faults = self.faults.lock().expect("fault lock poisoned");
                faults.next_action(self.me, to)
            };
            self.stats.bump(self.me, to, |e| e.attempts += 1);
            if action != FaultAction::Deliver {
                self.stats.bump(self.me, to, |e| e.injected += 1);
            }
            if let FaultAction::Delay(d) | FaultAction::Stall(d) = action {
                std::thread::sleep(d);
            }
            let op = match action {
                FaultAction::Deliver | FaultAction::Delay(_) | FaultAction::Stall(_) => {
                    WireOp::Deliver
                }
                FaultAction::Drop => WireOp::Drop,
                FaultAction::Truncate => WireOp::Truncate,
                FaultAction::Reset => WireOp::Reset,
            };
            let outcome = self.inner.attempt(to, epoch, msg, op);
            // Injected failures are synthesized here, not by the
            // backend, so both transports report the identical error
            // for the same scheduled fault.
            let failed = match op {
                WireOp::Deliver => outcome.err(),
                WireOp::Drop => Some(TransportError::Send {
                    to,
                    detail: "injected fault: frame dropped".to_string(),
                }),
                WireOp::Truncate => Some(TransportError::Send {
                    to,
                    detail: "injected fault: frame truncated".to_string(),
                }),
                WireOp::Reset => Some(TransportError::Send {
                    to,
                    detail: "injected fault: connection reset".to_string(),
                }),
            };
            let Some(err) = failed else {
                return Ok(());
            };
            if attempt >= max_attempts {
                return Err(err);
            }
            self.stats.bump(self.me, to, |e| e.retries += 1);
            let ms = self.retry.backoff_ms(edge_seed, attempt, prev_ms);
            prev_ms = ms;
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// The receiving half of the TCP wire for one party: a bound listener
/// plus an accept loop that turns incoming framed records into
/// [`PartyMsg::Data`] on the party's mailbox. Control connections
/// (first frame `Hello`) are handed to the `control` channel instead —
/// that is how an `mpq-server` process receives its coordinator.
pub(crate) struct TcpHub {
    addr: String,
    closing: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpHub {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start the
    /// accept loop.
    pub(crate) fn bind(
        addr: &str,
        inbox: Sender<PartyMsg>,
        control: Option<Sender<Control>>,
    ) -> Result<TcpHub, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|e| TransportError::Bind {
            addr: addr.to_string(),
            detail: e.to_string(),
        })?;
        let local = listener
            .local_addr()
            .map_err(|e| TransportError::Bind {
                addr: addr.to_string(),
                detail: e.to_string(),
            })?
            .to_string();
        let closing = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&closing);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                stream.set_nodelay(true).ok();
                let inbox = inbox.clone();
                let control = control.clone();
                // Pump threads are detached: they exit on EOF when the
                // sending peer drops its connection cache, which the
                // teardown ordering guarantees happens before the hub
                // itself is considered gone.
                std::thread::spawn(move || pump(stream, inbox, control));
            }
        });
        Ok(TcpHub {
            addr: local,
            closing,
            accept: Some(accept),
        })
    }

    /// The actually-bound `host:port` (resolves port 0).
    pub(crate) fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for TcpHub {
    fn drop(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(addr) = self.addr.parse::<std::net::SocketAddr>() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Per-connection receive loop: route data frames to the mailbox,
/// control connections to the control channel, drop anything else.
fn pump(mut stream: TcpStream, inbox: Sender<PartyMsg>, control: Option<Sender<Control>>) {
    match read_frame(&mut stream) {
        Ok(Some(Frame::Peer { .. })) => loop {
            match read_frame(&mut stream) {
                Ok(Some(Frame::Data { epoch, msg })) => {
                    if inbox.send(PartyMsg::Data { epoch, msg }).is_err() {
                        return;
                    }
                }
                // Clean EOF, a dead peer, or a non-data frame: either
                // way this connection is done. The *absence* of an
                // expected message is handled where it is observable —
                // the party loop's receive timeout.
                _ => return,
            }
        },
        Ok(Some(hello @ Frame::Hello { .. })) => {
            if let Some(control) = control {
                let _ = control.send(Control {
                    stream,
                    pending: Some(hello),
                    read_timeout: None,
                });
            }
        }
        _ => {}
    }
}

/// One framed control connection (coordinator ↔ server), used by
/// [`crate::remote`]. Keeps all socket handling inside this module:
/// callers see only [`Frame`] values and typed errors.
pub(crate) struct Control {
    stream: TcpStream,
    /// A frame already consumed by the hub's dispatcher (the `Hello`),
    /// replayed on the first `recv`.
    pending: Option<Frame>,
    /// The read timeout currently configured on `stream`, tracked so
    /// `recv` can restore the *previous* value after a bounded read
    /// instead of clobbering it to `None`.
    read_timeout: Option<Duration>,
}

impl Control {
    /// Connect to a server's hub with a connect timeout.
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<Control, TransportError> {
        let parsed: Vec<std::net::SocketAddr> = std::net::ToSocketAddrs::to_socket_addrs(addr)
            .map_err(|e| TransportError::Connect {
                addr: addr.to_string(),
                detail: e.to_string(),
            })?
            .collect();
        let target = parsed.first().ok_or(TransportError::Connect {
            addr: addr.to_string(),
            detail: "address resolved to nothing".to_string(),
        })?;
        let stream =
            TcpStream::connect_timeout(target, timeout).map_err(|e| TransportError::Connect {
                addr: addr.to_string(),
                detail: e.to_string(),
            })?;
        stream.set_nodelay(true).ok();
        Ok(Control {
            stream,
            pending: None,
            read_timeout: None,
        })
    }

    /// Send one control frame.
    pub(crate) fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        write_frame(&mut self.stream, frame).map_err(|e| TransportError::Recv {
            detail: e.to_string(),
        })
    }

    /// Sever the connection — the coordinator's control-plane `Reset`
    /// injection, and a cheap way for tests to simulate a dying peer.
    pub(crate) fn shutdown(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Reconfigure the socket's read timeout. A failure here is a real
    /// socket failure and surfaces as a typed error instead of being
    /// silently swallowed (which would turn the next `recv` into an
    /// unbounded wait, or a spuriously bounded one).
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        if self.read_timeout == timeout {
            return Ok(());
        }
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| TransportError::Recv {
                detail: format!("set_read_timeout: {e}"),
            })?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Receive one control frame, waiting at most `timeout` (or
    /// indefinitely when `None`). EOF surfaces as
    /// [`TransportError::Closed`]. The stream's previous read timeout
    /// is restored afterwards, so a bounded `recv` nested in an
    /// otherwise-bounded protocol phase does not leak an unbounded
    /// socket.
    pub(crate) fn recv(&mut self, timeout: Option<Duration>) -> Result<Frame, TransportError> {
        if let Some(f) = self.pending.take() {
            return Ok(f);
        }
        let prev = self.read_timeout;
        self.set_read_timeout(timeout)?;
        let r = read_frame(&mut self.stream);
        self.set_read_timeout(prev)?;
        match r {
            Ok(Some(f)) => Ok(f),
            Ok(None) => Err(TransportError::Closed),
            Err(TransportError::Timeout { .. }) => Err(TransportError::Timeout {
                millis: timeout.map(|d| d.as_millis() as u64).unwrap_or(0),
            }),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_exec::Table;
    use std::sync::mpsc::channel;

    #[test]
    fn tcp_hub_delivers_data_frames_to_the_mailbox() {
        let (tx, rx) = channel();
        let hub = TcpHub::bind("127.0.0.1:0", tx, None).expect("bind loopback");
        let me = SubjectId(1);
        let peers: HashMap<SubjectId, String> = [(SubjectId(0), hub.addr().to_string())]
            .into_iter()
            .collect();
        let wire = TcpTransport::new(me, peers, Duration::from_secs(2));
        let table = Table::from_rows(
            vec![mpq_algebra::AttrId(0)],
            vec![vec![mpq_algebra::Value::Int(7)]],
        );
        wire.attempt(
            SubjectId(0),
            3,
            &Msg::Result {
                from: me,
                seq: 0,
                table: table.clone(),
            },
            WireOp::Deliver,
        )
        .expect("loopback send");
        match rx.recv_timeout(Duration::from_secs(5)).expect("delivered") {
            PartyMsg::Data {
                epoch: 3,
                msg: Msg::Result { from, table: t, .. },
            } => {
                assert_eq!(from, me);
                assert_eq!(t.to_rows(), table.to_rows());
            }
            _ => panic!("wrong delivery"),
        }
    }

    #[test]
    fn connecting_to_a_dead_peer_is_a_typed_error() {
        // Bind-then-drop guarantees a port with no listener.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let peers: HashMap<SubjectId, String> = [(SubjectId(0), dead)].into_iter().collect();
        let wire = TcpTransport::new(SubjectId(1), peers, Duration::from_millis(500));
        let err = wire
            .attempt(SubjectId(0), 1, &Msg::Abort, WireOp::Deliver)
            .expect_err("no listener");
        assert!(matches!(err, TransportError::Connect { .. }), "got {err:?}");
    }

    fn probe_msg() -> Msg {
        Msg::Result {
            from: SubjectId(1),
            seq: 0,
            table: Table::from_rows(
                vec![mpq_algebra::AttrId(0)],
                vec![vec![mpq_algebra::Value::Int(1)]],
            ),
        }
    }

    fn test_wire(
        plan: Option<FaultPlan>,
        retry: RetryPolicy,
    ) -> (Wire, std::sync::mpsc::Receiver<PartyMsg>) {
        let (tx, rx) = channel();
        let inner = Arc::new(InProcTransport::new(vec![tx]));
        let wire = Wire::new(
            SubjectId(1),
            7,
            inner,
            Arc::new(Mutex::new(FaultState::new(plan))),
            retry,
            Arc::new(WireStats::default()),
        );
        (wire, rx)
    }

    #[test]
    fn wire_retries_recover_from_scheduled_drops() {
        // max=retry budget−1 guarantees every message eventually
        // delivers: the worst case spends all injections on one seq.
        let plan = FaultPlan::parse("seed=3,drop=400,max=3").expect("valid");
        let (wire, rx) = test_wire(Some(plan), RetryPolicy::default());
        for _ in 0..20 {
            wire.send(SubjectId(0), 1, probe_msg())
                .expect("within budget");
        }
        let mut seqs = Vec::new();
        while let Ok(PartyMsg::Data { msg, .. }) = rx.try_recv() {
            if let Msg::Result { seq, .. } = msg {
                seqs.push(seq);
            }
        }
        assert_eq!(seqs, (0..20).collect::<Vec<u64>>(), "in order, no loss");
    }

    #[test]
    fn exhausted_budget_is_the_scheduled_typed_error() {
        // 100% drop rate, no cap: every attempt fails, budget spends.
        let plan = FaultPlan::parse("seed=3,drop=1000").expect("valid");
        let (wire, _rx) = test_wire(
            Some(plan),
            RetryPolicy {
                max_attempts: 3,
                base_ms: 1,
                cap_ms: 2,
            },
        );
        let err = wire
            .send(SubjectId(0), 1, probe_msg())
            .expect_err("all attempts dropped");
        assert_eq!(
            err,
            TransportError::Send {
                to: SubjectId(0),
                detail: "injected fault: frame dropped".to_string()
            }
        );
    }

    #[test]
    fn reset_injection_delivers_a_duplicate_with_the_same_seq() {
        let plan = FaultPlan::parse("seed=5,reset=1000,max=1").expect("valid");
        let (wire, rx) = test_wire(Some(plan), RetryPolicy::default());
        wire.send(SubjectId(0), 9, probe_msg())
            .expect("retry after reset succeeds");
        let mut seqs = Vec::new();
        while let Ok(PartyMsg::Data { msg, .. }) = rx.try_recv() {
            if let Msg::Result { seq, .. } = msg {
                seqs.push(seq);
            }
        }
        assert_eq!(seqs, vec![0, 0], "delivered twice, same sequence number");
    }

    #[test]
    fn control_roundtrip_and_timeout() {
        let (tx, _rx) = channel();
        let (ctl_tx, ctl_rx) = channel();
        let hub = TcpHub::bind("127.0.0.1:0", tx, Some(ctl_tx)).expect("bind loopback");
        let mut client = Control::connect(hub.addr(), Duration::from_secs(2)).expect("connect");
        let public = {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(1);
            mpq_crypto::rsa::RsaKeypair::generate(&mut rng, 512).public
        };
        client
            .send(&Frame::Hello {
                user: SubjectId(0),
                public: public.clone(),
            })
            .expect("send hello");
        let mut server = ctl_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("control conn surfaced");
        match server.recv(Some(Duration::from_secs(2))).expect("hello") {
            Frame::Hello { user, public: p } => {
                assert_eq!(user, SubjectId(0));
                assert_eq!(p.n, public.n);
            }
            _ => panic!("expected hello"),
        }
        // Nothing else was sent: a bounded recv times out, typed.
        let err = server
            .recv(Some(Duration::from_millis(200)))
            .expect_err("no frame pending");
        assert!(matches!(err, TransportError::Timeout { .. }), "got {err:?}");
    }
}
