//! Simulator failures — every way a distributed run can be refused.

use mpq_algebra::{AttrId, NodeId, RelId, SubjectId};
use mpq_core::authz::AuthzViolation;
use mpq_exec::ExecError;

/// Why a distributed execution was aborted.
///
/// The first three variants are the simulator's *runtime* enforcement
/// of the paper's authorization model: they fire when an assignment
/// that slipped past (or bypassed) the static analysis of
/// `mpq_core::candidates` / `mpq_core::extend` would hand a subject
/// data its view does not permit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A subject's overall view does not authorize a relation it would
    /// compute on (Def. 4.1, re-checked per node before execution).
    Unauthorized {
        /// Node whose execution was refused.
        node: NodeId,
        /// Subject assigned to it.
        subject: SubjectId,
        /// The violated condition.
        violation: AuthzViolation,
    },
    /// A transferred table carried a plaintext cell for an attribute
    /// the receiving subject may only see encrypted (or not at all) —
    /// the cell-level counterpart of [`SimError::Unauthorized`].
    LeakedPlaintext {
        /// Attribute whose cell arrived in the wrong form.
        attr: AttrId,
        /// Receiving subject.
        subject: SubjectId,
    },
    /// A transferred table carried a column the receiving subject has
    /// no visibility over in any form.
    InvisibleAttribute {
        /// The invisible attribute.
        attr: AttrId,
        /// Receiving subject.
        subject: SubjectId,
    },
    /// A node of the extended plan has no assigned subject.
    Unassigned(NodeId),
    /// A base relation referenced by the plan has no data authority.
    NoAuthority(RelId),
    /// A leaf was assigned to a subject other than the data authority
    /// storing its relation — base relations never leave their
    /// authority.
    NotTheAuthority {
        /// The leaf node.
        node: NodeId,
        /// The subject wrongly assigned to it.
        subject: SubjectId,
        /// The authority that actually stores the relation.
        authority: SubjectId,
    },
    /// A signed request envelope failed to open or verify at its
    /// recipient (tampering, wrong recipient, wrong signer).
    Envelope {
        /// Intended recipient.
        to: SubjectId,
    },
    /// No per-attribute encryption scheme satisfies the plan
    /// (conflicting ciphertext capabilities).
    Scheme(String),
    /// Encrypted-literal rewriting failed (dispatcher lacks a key).
    Rewrite(String),
    /// A subject's local execution failed — including
    /// [`ExecError::MissingKey`] when a subject attempts encryption or
    /// decryption with a key Def. 6.1 never distributed to it.
    Exec(ExecError),
    /// The static pre-flight verifier (`mpq_core::verify`) rejected the
    /// plan before any key material was generated; the report carries
    /// every coded diagnostic. Sessions opened with
    /// `Session::without_preflight` skip this layer and rely on the
    /// dynamic checks above.
    Verify(mpq_core::verify::VerifyReport),
    /// The wire failed mid-query: a peer became unreachable, a frame
    /// was malformed, or an expected message never arrived within the
    /// configured timeout. The epoch is aborted cleanly (peers receive
    /// a best-effort `Abort`) and the session/coordinator stays usable.
    Transport(crate::transport::TransportError),
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

impl From<crate::transport::TransportError> for SimError {
    fn from(e: crate::transport::TransportError) -> Self {
        SimError::Transport(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unauthorized {
                node,
                subject,
                violation,
            } => write!(
                f,
                "subject {subject} is not authorized to execute node {node}: {violation}"
            ),
            SimError::LeakedPlaintext { attr, subject } => write!(
                f,
                "refusing transfer: plaintext cell of attribute {attr} would reach subject \
                 {subject}, whose view permits it only encrypted"
            ),
            SimError::InvisibleAttribute { attr, subject } => write!(
                f,
                "refusing transfer: attribute {attr} is not visible to subject {subject} in any form"
            ),
            SimError::Unassigned(n) => write!(f, "node {n} has no assigned subject"),
            SimError::NoAuthority(r) => {
                write!(f, "base relation {r} has no declared data authority")
            }
            SimError::NotTheAuthority {
                node,
                subject,
                authority,
            } => write!(
                f,
                "leaf {node} is assigned to {subject}, but its relation is stored by \
                 authority {authority}"
            ),
            SimError::Envelope { to } => {
                write!(f, "request envelope for subject {to} failed to open/verify")
            }
            SimError::Scheme(m) => write!(f, "scheme assignment failed: {m}"),
            SimError::Rewrite(m) => write!(f, "literal rewriting failed: {m}"),
            SimError::Exec(e) => write!(f, "subject-local execution failed: {e}"),
            SimError::Verify(r) => write!(f, "static pre-flight verification failed:\n{r}"),
            SimError::Transport(e) => write!(f, "transport failure aborted the query: {e}"),
        }
    }
}

impl std::error::Error for SimError {}
