//! Deterministic fault injection for the transport layer.
//!
//! The paper's §6 dispatch protocol assumes every provider answers
//! every signed sub-query envelope; real federations (SMCQL-style
//! deployments) see dropped frames, truncated writes, connection
//! resets, and stalled peers. This module makes those failures
//! *reproducible*: a [`FaultPlan`] is a pure function from
//! `(seed, edge, frame_index)` to a [`FaultAction`], consulted by the
//! retrying wire (see [`transport`](crate::transport)) before every
//! delivery attempt. The same plan drives the in-proc and the TCP
//! backend to the bit-identical schedule, so a failure observed over
//! real sockets replays in-process under a debugger.
//!
//! A plan is configured three ways, in priority order:
//!
//! 1. explicitly, via [`SessionConfig::faults`](crate::SessionConfig)
//!    or [`ServerConfig`](crate::ServerConfig);
//! 2. the `MPQ_FAULTS` environment variable ([`FaultPlan::from_env`]);
//! 3. absent — the wire delivers first-try, zero overhead.
//!
//! Recovery from injected (and real) failures is governed by a
//! [`RetryPolicy`]: a bounded attempt budget with decorrelated-jitter
//! exponential backoff, both fully seeded — no wall-clock entropy, per
//! the repo's determinism lint.

use mpq_algebra::SubjectId;
use std::time::Duration;

/// What the fault layer does to one delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the frame normally.
    Deliver,
    /// Sleep, then deliver — latency within the receiver's patience.
    Delay(Duration),
    /// The frame vanishes; the sender's attempt fails.
    Drop,
    /// A partial frame reaches the peer (over TCP: a short write that
    /// poisons the connection); the attempt fails.
    Truncate,
    /// The frame is delivered **and then** the connection dies, so the
    /// sender cannot tell and must re-send — the duplicate-delivery
    /// case that receiver-side dedup exists for.
    Reset,
    /// Sleep *past* the receiver's read timeout, then deliver — a
    /// stalled peer, the one failure retries cannot mask.
    Stall(Duration),
}

/// A seeded, declarative schedule of transport faults.
///
/// Rates are per-mille per delivery attempt; the decision for attempt
/// `index` on directed edge `from → to` is a pure hash of
/// `(seed, from, to, index)` — see [`FaultPlan::decide`]. Parsed from
/// compact `key=value` specs (the `--faults` flag / `MPQ_FAULTS` env):
///
/// ```text
/// seed=7,drop=100,reset=50,truncate=30,delay=200,delay-ms=10,stall=5,stall-ms=3000,max=8
/// ```
///
/// `max` caps the number of *injected* faults per directed edge
/// (deterministically — the cap is consumed in attempt order on each
/// edge), which lets tests guarantee a schedule stays within a retry
/// budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every per-attempt decision.
    pub seed: u64,
    /// Per-mille rate of [`FaultAction::Drop`].
    pub drop_pm: u32,
    /// Per-mille rate of [`FaultAction::Truncate`].
    pub truncate_pm: u32,
    /// Per-mille rate of [`FaultAction::Reset`].
    pub reset_pm: u32,
    /// Per-mille rate of [`FaultAction::Delay`].
    pub delay_pm: u32,
    /// Per-mille rate of [`FaultAction::Stall`].
    pub stall_pm: u32,
    /// Sleep for injected delays.
    pub delay_ms: u64,
    /// Sleep for injected stalls (pick it larger than the receive
    /// timeout or it is just a long delay).
    pub stall_ms: u64,
    /// Cap on injected faults per directed edge (`None` = unlimited).
    pub max_per_edge: Option<u32>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled; callers set
    /// rates via the struct fields or [`FaultPlan::parse`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_pm: 0,
            truncate_pm: 0,
            reset_pm: 0,
            delay_pm: 0,
            stall_pm: 0,
            delay_ms: 10,
            stall_ms: 3000,
            max_per_edge: None,
        }
    }

    /// Parse a `key=value,key=value` spec. Keys: `seed`, `drop`,
    /// `truncate`, `reset`, `delay`, `stall` (per-mille rates),
    /// `delay-ms`, `stall-ms`, `max`. Unknown keys and malformed
    /// values are errors — a chaos schedule that silently ignores a
    /// typo is worse than none.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
            let num = |what: &str| -> Result<u64, String> {
                value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("fault spec `{part}`: {what} must be a number"))
            };
            let rate = |what: &str| -> Result<u32, String> {
                let v = num(what)?;
                if v > 1000 {
                    return Err(format!(
                        "fault spec `{part}`: rates are per-mille (0..=1000)"
                    ));
                }
                Ok(v as u32)
            };
            match key.trim() {
                "seed" => plan.seed = num("seed")?,
                "drop" => plan.drop_pm = rate("drop")?,
                "truncate" => plan.truncate_pm = rate("truncate")?,
                "reset" => plan.reset_pm = rate("reset")?,
                "delay" => plan.delay_pm = rate("delay")?,
                "stall" => plan.stall_pm = rate("stall")?,
                "delay-ms" => plan.delay_ms = num("delay-ms")?,
                "stall-ms" => plan.stall_ms = num("stall-ms")?,
                "max" => plan.max_per_edge = Some(rate("max")?),
                other => return Err(format!("fault spec: unknown key `{other}`")),
            }
        }
        if plan.total_rate() > 1000 {
            return Err(format!(
                "fault spec `{spec}`: rates sum to {} per-mille (> 1000)",
                plan.total_rate()
            ));
        }
        Ok(plan)
    }

    /// The plan configured by the `MPQ_FAULTS` environment variable,
    /// if any. Panics on a malformed spec — an operator typo must not
    /// silently run fault-free.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("MPQ_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("MPQ_FAULTS: {e}"),
        }
    }

    /// Sum of all per-mille fault rates.
    fn total_rate(&self) -> u32 {
        self.drop_pm + self.truncate_pm + self.reset_pm + self.delay_pm + self.stall_pm
    }

    /// The action for delivery attempt `index` on edge `from → to` — a
    /// pure function, identical across transport backends and across
    /// runs. Cap enforcement lives in the wire (it needs the per-edge
    /// injected count); this is the raw schedule.
    pub fn decide(&self, from: SubjectId, to: SubjectId, index: u64) -> FaultAction {
        let h = splitmix64(
            self.seed
                ^ (from.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (to.index() as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
                ^ index.wrapping_mul(0xd6e8_feb8_6659_fd93),
        );
        let roll = (h % 1000) as u32;
        let mut edge = self.drop_pm;
        if roll < edge {
            return FaultAction::Drop;
        }
        edge += self.truncate_pm;
        if roll < edge {
            return FaultAction::Truncate;
        }
        edge += self.reset_pm;
        if roll < edge {
            return FaultAction::Reset;
        }
        edge += self.delay_pm;
        if roll < edge {
            return FaultAction::Delay(Duration::from_millis(self.delay_ms));
        }
        edge += self.stall_pm;
        if roll < edge {
            return FaultAction::Stall(Duration::from_millis(self.stall_ms));
        }
        FaultAction::Deliver
    }

    /// Render back to the spec format [`FaultPlan::parse`] accepts.
    pub fn spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for (key, v) in [
            ("drop", self.drop_pm as u64),
            ("truncate", self.truncate_pm as u64),
            ("reset", self.reset_pm as u64),
            ("delay", self.delay_pm as u64),
            ("stall", self.stall_pm as u64),
        ] {
            if v > 0 {
                out.push_str(&format!(",{key}={v}"));
            }
        }
        if self.delay_pm > 0 {
            out.push_str(&format!(",delay-ms={}", self.delay_ms));
        }
        if self.stall_pm > 0 {
            out.push_str(&format!(",stall-ms={}", self.stall_ms));
        }
        if let Some(max) = self.max_per_edge {
            out.push_str(&format!(",max={max}"));
        }
        out
    }
}

/// Bounded recovery: how many delivery attempts one logical message
/// gets, and how long to back off between them.
///
/// Backoff is decorrelated jitter (AWS architecture-blog style):
/// `sleep = base + rand(0, min(cap, prev·3) − base)`, with the
/// "random" draw a pure hash of `(seed, edge, attempt)` so recovery
/// timing replays exactly. Every retry loop in the engine consumes
/// this budget — `mpq-lint` enforces that no retry loop is unbounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total delivery attempts per logical message (1 = no retries).
    pub max_attempts: u32,
    /// Backoff floor in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_ms: 5,
            cap_ms: 100,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based), given the
    /// previous sleep `prev_ms`. Deterministic in `(seed, attempt)`.
    pub fn backoff_ms(&self, seed: u64, attempt: u32, prev_ms: u64) -> u64 {
        let cap = self.cap_ms.max(self.base_ms);
        let hi = prev_ms.saturating_mul(3).clamp(self.base_ms, cap);
        let span = (hi - self.base_ms).max(1);
        self.base_ms
            + splitmix64(seed ^ u64::from(attempt).wrapping_mul(0xa076_1d64_78bd_642f)) % span
    }
}

/// SplitMix64 — the repo's standard seed-expansion hash (same finalizer
/// the in-tree `rand` shim uses). Good avalanche, zero state.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_core::fixtures::RunningExample;

    #[test]
    fn parse_roundtrips_through_spec() {
        let spec = "seed=7,drop=100,reset=50,delay=200,delay-ms=15,stall=5,stall-ms=2500,max=8";
        let plan = FaultPlan::parse(spec).expect("valid spec");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_pm, 100);
        assert_eq!(plan.reset_pm, 50);
        assert_eq!(plan.delay_pm, 200);
        assert_eq!(plan.delay_ms, 15);
        assert_eq!(plan.stall_pm, 5);
        assert_eq!(plan.stall_ms, 2500);
        assert_eq!(plan.max_per_edge, Some(8));
        let reparsed = FaultPlan::parse(&plan.spec()).expect("spec() is parseable");
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_rejects_typos_and_overfull_rates() {
        assert!(FaultPlan::parse("dorp=100").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=abc").is_err());
        assert!(FaultPlan::parse("drop=1001").is_err());
        assert!(FaultPlan::parse("drop=600,delay=600").is_err());
    }

    #[test]
    fn decide_is_deterministic_and_edge_sensitive() {
        let ex = RunningExample::new();
        let (h, z) = (ex.subject("H"), ex.subject("Z"));
        let plan = FaultPlan::parse("seed=42,drop=300,delay=300").expect("valid");
        let a: Vec<_> = (0..64).map(|i| plan.decide(h, z, i)).collect();
        let b: Vec<_> = (0..64).map(|i| plan.decide(h, z, i)).collect();
        assert_eq!(a, b, "same (seed, edge, index) ⇒ same action");
        let other: Vec<_> = (0..64).map(|i| plan.decide(z, h, i)).collect();
        assert_ne!(a, other, "the schedule distinguishes directed edges");
        assert!(a.contains(&FaultAction::Drop));
        assert!(a.contains(&FaultAction::Deliver));
    }

    #[test]
    fn empty_plan_always_delivers() {
        let ex = RunningExample::new();
        let plan = FaultPlan::new(9);
        for i in 0..128 {
            assert_eq!(
                plan.decide(ex.subject("H"), ex.subject("I"), i),
                FaultAction::Deliver
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy::default();
        let mut prev = policy.base_ms;
        let mut sleeps = Vec::new();
        for attempt in 1..=8 {
            let ms = policy.backoff_ms(1234, attempt, prev);
            assert!(ms >= policy.base_ms && ms <= policy.cap_ms + policy.base_ms);
            assert_eq!(ms, policy.backoff_ms(1234, attempt, prev), "deterministic");
            sleeps.push(ms);
            prev = ms;
        }
        assert!(
            sleeps.windows(2).any(|w| w[0] != w[1]),
            "jitter should vary across attempts: {sleeps:?}"
        );
    }
}
