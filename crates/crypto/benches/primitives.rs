//! Microbenchmarks for the crypto primitives under the §7 cost model.
//!
//! `cargo bench -p mpq-crypto --bench primitives` (CI runs this in the
//! `bench-smoke` job so the Montgomery/fixed-window win stays visible
//! in the job summary). The headline numbers:
//!
//! * `modpow/*` — the modular exponentiation every RSA envelope and
//!   Paillier cell sits on, with and without a reused
//!   [`Montgomery`] context;
//! * `paillier/*` — per-value encrypt/decrypt/add at the benchmark
//!   modulus size (512 bits);
//! * `xtea/*` — one block and a full deterministic value;
//! * `ope/encode` — the 64-level keyed binary descent.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mpq_algebra::value::{EncScheme, Value};
use mpq_crypto::bignum::{BigUint, Montgomery};
use mpq_crypto::keyring::ClusterKey;
use mpq_crypto::schemes::{decrypt_value, encrypt_batch, paillier_add_cells};
use mpq_crypto::xtea::XteaSchedule;
use mpq_crypto::{ope, xtea};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_modpow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let p = BigUint::gen_prime(&mut rng, 256);
    let q = BigUint::gen_prime(&mut rng, 256);
    let n = p.mul(&q); // 512-bit odd modulus
    let base = BigUint::random_below(&mut rng, &n);
    let exp = BigUint::random_below(&mut rng, &n);
    let mut g = c.benchmark_group("modpow");
    g.bench_function("512bit_one_shot", |b| {
        b.iter(|| black_box(&base).modpow(black_box(&exp), black_box(&n)))
    });
    let ctx = Montgomery::new(&n).expect("odd");
    g.bench_function("512bit_reused_ctx", |b| {
        b.iter(|| ctx.pow(black_box(&base), black_box(&exp)))
    });
    g.finish();
}

fn bench_paillier(c: &mut Criterion) {
    let key = ClusterKey::generate(&mut StdRng::seed_from_u64(7), 1, 512);
    let mut rng = StdRng::seed_from_u64(9);
    let mut g = c.benchmark_group("paillier");
    g.bench_function("encrypt_512", |b| {
        b.iter(|| {
            encrypt_batch(&mut rng, &[Value::Int(12_345)], EncScheme::Paillier, &key).unwrap()
        })
    });
    let cells = encrypt_batch(
        &mut rng,
        &[Value::Int(1), Value::Int(2)],
        EncScheme::Paillier,
        &key,
    )
    .unwrap();
    g.bench_function("decrypt_512", |b| {
        b.iter(|| decrypt_value(black_box(&cells[0]), &key).unwrap())
    });
    let (a, b_cell) = match (&cells[0], &cells[1]) {
        (Value::Enc(a), Value::Enc(b)) => (a.clone(), b.clone()),
        _ => unreachable!("encrypted above"),
    };
    let pk = key.paillier_public();
    g.bench_function("add_512", |b| {
        b.iter(|| paillier_add_cells(black_box(&a), black_box(&b_cell), &pk).unwrap())
    });
    g.finish();
}

fn bench_xtea(c: &mut Criterion) {
    let key = [7u8; 16];
    let schedule = XteaSchedule::new(&key);
    let mut g = c.benchmark_group("xtea");
    g.bench_function("block", |b| {
        b.iter(|| schedule.encrypt_block(black_box(0xdead_beef_cafe_f00d)))
    });
    let value = Value::str("a-typical-string-cell").canonical_bytes();
    g.bench_function("det_value", |b| {
        b.iter(|| schedule.det_encrypt(black_box(&value)))
    });
    g.bench_function("det_value_one_shot_key", |b| {
        b.iter(|| xtea::det_encrypt(black_box(&key), black_box(&value)))
    });
    g.finish();
}

fn bench_ope(c: &mut Criterion) {
    let key = [9u8; 16];
    c.bench_function("ope/encode", |b| {
        b.iter(|| ope::ope_encrypt_code(black_box(&key), black_box(0x1234_5678_9abc_def0)))
    });
}

criterion_group!(benches, bench_modpow, bench_paillier, bench_xtea, bench_ope);
criterion_main!(benches);
