//! Property-based tests for the cryptographic substrate.

use mpq_algebra::value::EncScheme;
use mpq_algebra::{Date, Value};
use mpq_crypto::bignum::BigUint;
use mpq_crypto::keyring::ClusterKey;
use mpq_crypto::ope;
use mpq_crypto::schemes::{decrypt_value, encrypt_value};
use mpq_crypto::sha256::sha256;
use mpq_crypto::xtea;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bignum ring laws against the u128 oracle.
    #[test]
    fn bignum_ring_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ba, bb, bc) = (
            BigUint::from_u64(a),
            BigUint::from_u64(b),
            BigUint::from_u64(c),
        );
        // Commutativity and associativity of addition.
        prop_assert_eq!(ba.add(&bb), bb.add(&ba));
        prop_assert_eq!(ba.add(&bb).add(&bc), ba.add(&bb.add(&bc)));
        // Distributivity.
        prop_assert_eq!(
            ba.mul(&bb.add(&bc)),
            ba.mul(&bb).add(&ba.mul(&bc))
        );
        // Division identity: a = q·b + r with r < b.
        if b != 0 {
            let (q, r) = ba.divmod(&bb);
            prop_assert!(r < bb);
            prop_assert_eq!(q.mul(&bb).add(&r), ba);
        }
    }

    /// XTEA deterministic encryption is a bijection on byte strings.
    #[test]
    fn xtea_det_roundtrip(key in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let ct = xtea::det_encrypt(&key, &msg);
        prop_assert_eq!(xtea::det_decrypt(&key, &ct).unwrap(), msg);
    }

    /// XTEA randomized encryption round-trips under any nonce.
    #[test]
    fn xtea_rnd_roundtrip(key in any::<[u8; 16]>(), nonce in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let ct = xtea::rnd_encrypt(&key, nonce, &msg);
        prop_assert_eq!(xtea::rnd_decrypt(&key, &ct).unwrap(), msg);
    }

    /// OPE strictly preserves order and round-trips, for any key.
    #[test]
    fn ope_order_and_roundtrip(key in any::<[u8; 16]>(), a in any::<u64>(), b in any::<u64>()) {
        let ca = ope::ope_encrypt_code(&key, a);
        let cb = ope::ope_encrypt_code(&key, b);
        prop_assert_eq!(a.cmp(&b), ca.cmp(&cb));
        prop_assert_eq!(ope::ope_decrypt_code(&key, ca), Some(a));
    }

    /// SHA-256 behaves as a function and is sensitive to single-byte
    /// changes.
    #[test]
    fn sha256_function_and_sensitivity(mut msg in proptest::collection::vec(any::<u8>(), 1..300), flip in any::<u8>()) {
        let d1 = sha256(&msg);
        prop_assert_eq!(sha256(&msg), d1);
        let i = flip as usize % msg.len();
        msg[i] ^= 0xff;
        prop_assert_ne!(sha256(&msg), d1);
    }

    /// Value-level encryption round-trips for every scheme that
    /// supports the value type.
    #[test]
    fn value_roundtrip(seed in any::<u64>(), iv in any::<i64>(), nv in -1e12_f64..1e12, dv in -30_000i32..60_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = ClusterKey::generate(&mut rng, 1, 256);
        let values = [
            Value::Int(iv),
            Value::Num((nv * 100.0).round() / 100.0),
            Value::Date(Date(dv)),
        ];
        for v in &values {
            for scheme in [EncScheme::Deterministic, EncScheme::Random, EncScheme::Ope] {
                let enc = encrypt_value(&mut rng, v, scheme, &key).unwrap();
                let dec = decrypt_value(&enc, &key).unwrap();
                prop_assert!(dec.sql_eq(v), "{scheme:?} over {v:?} gave {dec:?}");
            }
        }
        // Paillier (numerics only, fixed-point at 4 decimal digits).
        let small = Value::Num(((nv % 1e6) * 100.0).round() / 100.0);
        let enc = encrypt_value(&mut rng, &small, EncScheme::Paillier, &key).unwrap();
        let dec = decrypt_value(&enc, &key).unwrap();
        let (a, b) = (small.as_num().unwrap(), dec.as_num().unwrap());
        prop_assert!((a - b).abs() < 1e-3, "Paillier {a} vs {b}");
    }

    /// Deterministic ciphertext equality mirrors plaintext equality.
    #[test]
    fn det_equality_mirrors_plaintext(seed in any::<u64>(), a in any::<i64>(), b in any::<i64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = ClusterKey::generate(&mut rng, 2, 256);
        let ea = encrypt_value(&mut rng, &Value::Int(a), EncScheme::Deterministic, &key).unwrap();
        let eb = encrypt_value(&mut rng, &Value::Int(b), EncScheme::Deterministic, &key).unwrap();
        prop_assert_eq!(ea.sql_eq(&eb), a == b);
    }
}
