//! # mpq-crypto
//!
//! Self-contained cryptographic substrate for the multi-provider query
//! engine. The paper's evaluation (§7) assumes four encryption
//! techniques — randomized symmetric, deterministic symmetric, the
//! Paillier cryptosystem, and an order-preserving scheme — plus
//! public-key signatures/encryption for dispatching sub-queries
//! (`[[q_S, keys]_priU]_pubS`, Fig. 8).
//!
//! Everything here is implemented from scratch with no third-party
//! crypto dependencies:
//!
//! * [`bignum`] — arbitrary-precision unsigned integers with modular
//!   exponentiation, inverse, and Miller–Rabin primality (substrate for
//!   Paillier and RSA);
//! * [`siphash`] — SipHash-2-4 keyed PRF (OPE coin flips, key
//!   derivation);
//! * [`xtea`] — the XTEA block cipher; deterministic (ECB over padded
//!   canonical encodings) and randomized (CTR) symmetric schemes;
//! * [`ope`] — a Boldyreva-style recursive-interval order-preserving
//!   encoding;
//! * [`paillier`] — additively homomorphic encryption enabling SUM/AVG
//!   over ciphertexts;
//! * [`sha256`] — SHA-256 for signatures and key fingerprints;
//! * [`rsa`] — textbook RSA sign/verify and encrypt/decrypt for request
//!   envelopes;
//! * [`keyring`] — per-attribute-cluster key material and a registry
//!   modelling the paper's key distribution (Def. 6.1);
//! * [`schemes`] — value-level encrypt/decrypt dispatching to the four
//!   schemes, producing `mpq_algebra::value::EncValue` cells.
//!
//! ## Security disclaimer
//!
//! These implementations are **educational**: they reproduce the
//! *functional* behaviour (determinism, order preservation, additive
//! homomorphism, ciphertext expansion, relative CPU costs) that the
//! paper's model depends on. They must not be used to protect real
//! data: XTEA-ECB leaks equality by design (that is what deterministic
//! encryption does), our OPE leaks order by design, key sizes default
//! to test-friendly lengths, and the RSA padding is not CCA-secure.

pub mod bignum;
pub mod keyring;
pub mod ope;
pub mod paillier;
pub mod rsa;
pub mod schemes;
pub mod sha256;
pub mod siphash;
pub mod xtea;

pub use bignum::{BigUint, Montgomery};
pub use keyring::{ClusterKey, KeyRing};
pub use paillier::{PaillierCiphertext, PaillierKeypair, PaillierPublic};
pub use rsa::{RsaKeypair, SignedEnvelope};
pub use schemes::{
    decrypt_batch, decrypt_value, encrypt_batch, encrypt_value, ColumnCipher, EncryptError,
};
