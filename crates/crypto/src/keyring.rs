//! Cluster keys and per-subject key rings.
//!
//! Definition 6.1 clusters encrypted attributes by the root profile's
//! equivalence classes and assigns one key per cluster. A
//! [`ClusterKey`] carries the material for *all four* schemes derived
//! from one 128-bit master secret (deterministic/randomized/OPE
//! sub-keys via SipHash key derivation, plus a Paillier keypair), so
//! the optimizer can pick the scheme per operation, as the paper
//! prescribes ("each attribute can be encrypted with a different
//! encryption scheme … the only constraint is that attributes that
//! belong to the same set in the equivalence set of the root's profile
//! need to be encrypted with the same key").
//!
//! A [`KeyRing`] is the set of cluster keys a subject holds; the
//! distributed simulator hands each subject exactly the keys Def. 6.1
//! distributes to it and enforces that decryption without the key
//! fails.

use crate::paillier::{PaillierKeypair, PaillierPublic};
use crate::siphash::derive_subkey;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Key material for one attribute cluster.
///
/// Scheme sub-keys are derived from the master secret once, at
/// generation time — encrypting a column no longer re-runs the SipHash
/// derivation per cell, and clones share the Paillier keypair (and its
/// cached Montgomery context) through an `Arc`.
#[derive(Clone)]
pub struct ClusterKey {
    /// Key id (matches `mpq_core::keys::PlanKey::id` and the `key_id`
    /// field of encrypted cells).
    pub id: u32,
    /// Deterministic-scheme sub-key.
    det: [u8; 16],
    /// Randomized-scheme sub-key.
    rnd: [u8; 16],
    /// OPE sub-key.
    ope: [u8; 16],
    /// Paillier keypair for additively homomorphic aggregation.
    paillier: Arc<PaillierKeypair>,
}

impl std::fmt::Debug for ClusterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "ClusterKey(id={})", self.id)
    }
}

impl ClusterKey {
    /// Generate fresh material. `paillier_bits` sizes the homomorphic
    /// modulus (256 is plenty for tests; 512+ for benchmarks).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, id: u32, paillier_bits: usize) -> ClusterKey {
        let mut master = [0u8; 16];
        rng.fill(&mut master);
        ClusterKey {
            id,
            det: derive_subkey(&master, "det"),
            rnd: derive_subkey(&master, "rnd"),
            ope: derive_subkey(&master, "ope"),
            paillier: Arc::new(PaillierKeypair::generate(rng, paillier_bits)),
        }
    }

    /// Deterministic-scheme sub-key.
    pub fn det_key(&self) -> [u8; 16] {
        self.det
    }

    /// Randomized-scheme sub-key.
    pub fn rnd_key(&self) -> [u8; 16] {
        self.rnd
    }

    /// OPE sub-key.
    pub fn ope_key(&self) -> [u8; 16] {
        self.ope
    }

    /// Full Paillier keypair (decryption capability).
    pub fn paillier(&self) -> &PaillierKeypair {
        &self.paillier
    }

    /// Public Paillier half (enough to encrypt and aggregate).
    pub fn paillier_public(&self) -> PaillierPublic {
        self.paillier.public.clone()
    }

    /// Serialize the full key material for Def. 6.1 provisioning over a
    /// wire: id, the three derived sub-keys, and the Paillier keypair.
    /// Secret material — must only travel inside a sealed
    /// [`SignedEnvelope`](crate::rsa::SignedEnvelope).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 48);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.det);
        out.extend_from_slice(&self.rnd);
        out.extend_from_slice(&self.ope);
        out.extend_from_slice(&self.paillier.to_bytes());
        out
    }

    /// Reconstruct a key from [`ClusterKey::to_bytes`] output (`None`
    /// on malformed input).
    pub fn from_bytes(bytes: &[u8]) -> Option<ClusterKey> {
        if bytes.len() < 4 + 48 {
            return None;
        }
        let id = u32::from_be_bytes(bytes[0..4].try_into().ok()?);
        let sub = |at: usize| -> Option<[u8; 16]> { bytes[at..at + 16].try_into().ok() };
        Some(ClusterKey {
            id,
            det: sub(4)?,
            rnd: sub(20)?,
            ope: sub(36)?,
            paillier: Arc::new(PaillierKeypair::from_bytes(&bytes[52..])?),
        })
    }
}

/// The keys one subject holds, indexed by key id.
///
/// Full [`ClusterKey`]s grant encryption and decryption; *public*
/// Paillier halves (which any subject may hold — they enable only
/// homomorphic aggregation, not decryption) are tracked separately so
/// a provider like the paper's `X` can compute `avg(P^k)` without ever
/// being able to read `P`.
#[derive(Default)]
pub struct KeyRing {
    keys: RwLock<HashMap<u32, ClusterKey>>,
    publics: RwLock<HashMap<u32, Arc<PaillierPublic>>>,
}

impl KeyRing {
    /// Empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grant a full key to this ring.
    pub fn insert(&self, key: ClusterKey) {
        self.publics
            .write()
            .expect("keyring lock poisoned")
            .insert(key.id, Arc::new(key.paillier_public()));
        self.keys
            .write()
            .expect("keyring lock poisoned")
            .insert(key.id, key);
    }

    /// Grant only the public (aggregation) half of a key.
    pub fn insert_public(&self, id: u32, public: PaillierPublic) {
        self.publics
            .write()
            .expect("keyring lock poisoned")
            .insert(id, Arc::new(public));
    }

    /// Fetch a full key by id.
    pub fn get(&self, id: u32) -> Option<ClusterKey> {
        self.keys
            .read()
            .expect("keyring lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Fetch the public Paillier half of a key. The returned handle is
    /// shared: its cached Montgomery context is built once per ring
    /// entry, not per caller.
    pub fn get_public(&self, id: u32) -> Option<Arc<PaillierPublic>> {
        self.publics
            .read()
            .expect("keyring lock poisoned")
            .get(&id)
            .cloned()
    }

    /// `true` if the ring holds the full key `id`.
    pub fn holds(&self, id: u32) -> bool {
        self.keys
            .read()
            .expect("keyring lock poisoned")
            .contains_key(&id)
    }

    /// Number of full keys held.
    pub fn len(&self) -> usize {
        self.keys.read().expect("keyring lock poisoned").len()
    }

    /// `true` when the ring holds no full key.
    pub fn is_empty(&self) -> bool {
        self.keys.read().expect("keyring lock poisoned").is_empty()
    }

    /// Ids of the full keys held, sorted.
    pub fn ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .keys
            .read()
            .expect("keyring lock poisoned")
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Drop the full key `id`, keeping its public (aggregation) half if
    /// it was ever granted. Returns `true` if a key was removed.
    pub fn revoke(&self, id: u32) -> bool {
        self.keys
            .write()
            .expect("keyring lock poisoned")
            .remove(&id)
            .is_some()
    }
}

impl Clone for KeyRing {
    fn clone(&self) -> Self {
        KeyRing {
            keys: RwLock::new(self.keys.read().expect("keyring lock poisoned").clone()),
            publics: RwLock::new(self.publics.read().expect("keyring lock poisoned").clone()),
        }
    }
}

impl std::fmt::Debug for KeyRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ids: Vec<u32> = self
            .keys
            .read()
            .expect("keyring lock poisoned")
            .keys()
            .copied()
            .collect();
        write!(f, "KeyRing{ids:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn subkeys_are_distinct_and_stable() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = ClusterKey::generate(&mut rng, 0, 256);
        assert_ne!(k.det_key(), k.rnd_key());
        assert_ne!(k.det_key(), k.ope_key());
        assert_eq!(k.det_key(), k.det_key());
    }

    #[test]
    fn ring_membership() {
        let mut rng = StdRng::seed_from_u64(6);
        let ring = KeyRing::new();
        assert!(ring.is_empty());
        let k = ClusterKey::generate(&mut rng, 3, 256);
        ring.insert(k);
        assert!(ring.holds(3));
        assert!(!ring.holds(4));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.get(3).unwrap().id, 3);
        assert!(ring.get(4).is_none());
    }

    #[test]
    fn debug_never_leaks_material() {
        let mut rng = StdRng::seed_from_u64(7);
        let k = ClusterKey::generate(&mut rng, 9, 256);
        let dbg = format!("{k:?}");
        assert_eq!(dbg, "ClusterKey(id=9)");
    }
}
