//! Value-level encryption: `Value` → `EncValue` and back.
//!
//! The scheme is chosen by the caller (the planner picks, per
//! attribute, "the scheme providing highest protection, while
//! supporting the operations to be executed on the attribute's
//! encrypted values" — §6):
//!
//! * [`EncScheme::Random`] — XTEA-CTR; supports nothing;
//! * [`EncScheme::Deterministic`] — XTEA-ECB over canonical bytes;
//!   equality/joins/grouping work byte-wise;
//! * [`EncScheme::Ope`] — order-preserving code; comparisons work
//!   byte-wise (numeric/date/int only);
//! * [`EncScheme::Paillier`] — additively homomorphic; SUM/AVG work via
//!   ciphertext multiplication. Numerics are fixed-point encoded with
//!   [`NUM_SCALE`] decimal places.

use crate::bignum::BigUint;
use crate::keyring::ClusterKey;
use crate::ope;
use crate::paillier::PaillierCiphertext;
use crate::xtea::XteaSchedule;
use mpq_algebra::value::{EncScheme, EncValue, Value};
use rand::Rng;
use std::sync::Arc;

/// Fixed-point scale for Paillier-encoded numerics (cents at scale 2,
/// plus two guard digits for intermediate products).
pub const NUM_SCALE: f64 = 10_000.0;

/// Errors from value encryption/decryption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncryptError {
    /// The value type cannot be carried by the requested scheme
    /// (e.g. OPE over strings, Paillier over strings).
    UnsupportedType(&'static str),
    /// Ciphertext malformed or produced under a different key.
    BadCiphertext,
    /// The cell is not encrypted / not plaintext as required.
    WrongForm,
}

impl std::fmt::Display for EncryptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncryptError::UnsupportedType(what) => {
                write!(f, "scheme cannot encrypt {what}")
            }
            EncryptError::BadCiphertext => write!(f, "malformed ciphertext or wrong key"),
            EncryptError::WrongForm => write!(f, "value in unexpected form"),
        }
    }
}

impl std::error::Error for EncryptError {}

/// A cluster key prepared for repeated use on one column: XTEA key
/// schedules expanded, sub-keys and the Paillier public half resolved
/// once. This is the batch entry the execution engine uses — the
/// per-value setup (`SipHash` sub-key derivation, key-schedule
/// expansion, Paillier `n²` Montgomery context) is paid once per
/// column instead of once per cell.
pub struct ColumnCipher {
    scheme: EncScheme,
    key: ClusterKey,
    det: XteaSchedule,
    rnd: XteaSchedule,
    ope: [u8; 16],
}

impl ColumnCipher {
    /// Prepare `key` for encrypting/decrypting a column under `scheme`.
    pub fn new(scheme: EncScheme, key: &ClusterKey) -> ColumnCipher {
        ColumnCipher {
            scheme,
            det: XteaSchedule::new(&key.det_key()),
            rnd: XteaSchedule::new(&key.rnd_key()),
            ope: key.ope_key(),
            key: key.clone(),
        }
    }

    /// The key id ciphertexts will carry.
    pub fn key_id(&self) -> u32 {
        self.key.id
    }

    /// Encrypt one plaintext cell under the prepared scheme. NULLs pass
    /// through unencrypted (SQL semantics: NULL carries no value; the
    /// paper's model operates at the schema level).
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        value: &Value,
    ) -> Result<Value, EncryptError> {
        if value.is_null() {
            return Ok(Value::Null);
        }
        if matches!(value, Value::Enc(_)) {
            return Err(EncryptError::WrongForm);
        }
        let bytes: Vec<u8> = match self.scheme {
            EncScheme::Deterministic => self.det.det_encrypt(&value.canonical_bytes()),
            EncScheme::Random => self.rnd.rnd_encrypt(rng.gen(), &value.canonical_bytes()),
            EncScheme::Ope => {
                let (ty, code) = match value {
                    Value::Int(i) => (ope::OpeType::Int, ope::int_to_code(*i)),
                    Value::Num(f) => (ope::OpeType::Num, ope::num_to_code(*f)),
                    Value::Date(d) => (ope::OpeType::Date, ope::int_to_code(d.0 as i64)),
                    Value::Bool(_) | Value::Str(_) => {
                        return Err(EncryptError::UnsupportedType("strings/bools under OPE"))
                    }
                    Value::Null | Value::Enc(_) => unreachable!("handled above"),
                };
                ope::ope_encrypt(&self.ope, ty, code)
            }
            EncScheme::Paillier => {
                let (tag, encoded): (u8, i64) = match value {
                    Value::Int(i) => (1, *i),
                    Value::Num(f) => (2, (f * NUM_SCALE).round() as i64),
                    _ => {
                        return Err(EncryptError::UnsupportedType(
                            "only numerics under Paillier",
                        ))
                    }
                };
                let pk = &self.key.paillier().public;
                let c = pk.encrypt(rng, &pk.encode_signed(encoded));
                encode_paillier_cell(tag, AggKind::Single, 1, &c)
            }
        };
        Ok(Value::Enc(EncValue {
            scheme: self.scheme,
            key_id: self.key.id,
            bytes: Arc::from(bytes),
        }))
    }

    /// Decrypt one cell (any scheme — the cell is self-describing).
    /// NULLs pass through.
    pub fn decrypt(&self, value: &Value) -> Result<Value, EncryptError> {
        let enc = match value {
            Value::Null => return Ok(Value::Null),
            Value::Enc(e) => e,
            _ => return Err(EncryptError::WrongForm),
        };
        if enc.key_id != self.key.id {
            return Err(EncryptError::BadCiphertext);
        }
        match enc.scheme {
            EncScheme::Deterministic => {
                let pt = self
                    .det
                    .det_decrypt(&enc.bytes)
                    .ok_or(EncryptError::BadCiphertext)?;
                Value::from_canonical_bytes(&pt).ok_or(EncryptError::BadCiphertext)
            }
            EncScheme::Random => {
                let pt = self
                    .rnd
                    .rnd_decrypt(&enc.bytes)
                    .ok_or(EncryptError::BadCiphertext)?;
                Value::from_canonical_bytes(&pt).ok_or(EncryptError::BadCiphertext)
            }
            EncScheme::Ope => {
                let (ty, code) =
                    ope::ope_decrypt(&self.ope, &enc.bytes).ok_or(EncryptError::BadCiphertext)?;
                Ok(match ty {
                    ope::OpeType::Int => Value::Int(ope::code_to_int(code)),
                    ope::OpeType::Num => Value::Num(ope::code_to_num(code)),
                    ope::OpeType::Date => {
                        Value::Date(mpq_algebra::Date(ope::code_to_int(code) as i32))
                    }
                })
            }
            EncScheme::Paillier => {
                let (tag, kind, count, c) = decode_paillier_cell(&enc.bytes)?;
                let v = self.key.paillier().decode_sum(&c, count);
                if tag != 1 && tag != 2 {
                    return Err(EncryptError::BadCiphertext);
                }
                Ok(match kind {
                    // Integer SUMs decode exactly (the old f64 detour
                    // rounded values above 2⁵³); a sum escaping the
                    // i64 range clamps, like the previous saturating
                    // float-to-int cast.
                    AggKind::Single | AggKind::Sum if tag == 1 => {
                        Value::Int(v.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
                    }
                    AggKind::Single | AggKind::Sum => Value::Num(v as f64 / NUM_SCALE),
                    AggKind::Avg if tag == 1 => Value::Num(v as f64 / count.max(1) as f64),
                    AggKind::Avg => Value::Num(v as f64 / NUM_SCALE / count.max(1) as f64),
                })
            }
        }
    }
}

/// Encrypt a plaintext `Value` under `scheme` with a cluster key.
/// One-shot; batch callers should use [`ColumnCipher`] /
/// [`encrypt_batch`] so the key setup is paid once per column.
pub fn encrypt_value<R: Rng + ?Sized>(
    rng: &mut R,
    value: &Value,
    scheme: EncScheme,
    key: &ClusterKey,
) -> Result<Value, EncryptError> {
    ColumnCipher::new(scheme, key).encrypt(rng, value)
}

/// Decrypt an encrypted cell with the cluster key. NULLs pass through.
/// One-shot; batch callers should use [`ColumnCipher`] /
/// [`decrypt_batch`].
pub fn decrypt_value(value: &Value, key: &ClusterKey) -> Result<Value, EncryptError> {
    // The cell is self-describing, so the prepared scheme is irrelevant
    // for decryption.
    ColumnCipher::new(EncScheme::Deterministic, key).decrypt(value)
}

/// Encrypt a column slice under one scheme/key, paying the key setup
/// once. Randomness is drawn from `rng` value-by-value in slice order.
pub fn encrypt_batch<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[Value],
    scheme: EncScheme,
    key: &ClusterKey,
) -> Result<Vec<Value>, EncryptError> {
    let cipher = ColumnCipher::new(scheme, key);
    values.iter().map(|v| cipher.encrypt(rng, v)).collect()
}

/// Decrypt a column slice with one key, paying the key setup once.
pub fn decrypt_batch(values: &[Value], key: &ClusterKey) -> Result<Vec<Value>, EncryptError> {
    let cipher = ColumnCipher::new(EncScheme::Deterministic, key);
    values.iter().map(|v| cipher.decrypt(v)).collect()
}

/// How a Paillier cell was produced: a single encrypted value, a
/// homomorphic SUM of `count` values, or an AVG (sum that decrypts to
/// the mean).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    /// One encrypted value.
    Single = 0,
    /// Homomorphic sum of `count` terms.
    Sum = 1,
    /// Homomorphic sum of `count` terms, decoded as their mean.
    Avg = 2,
}

/// Cell layout: `tag(1) ‖ kind(1) ‖ count(8, BE) ‖ ciphertext`.
fn encode_paillier_cell(tag: u8, kind: AggKind, count: u64, c: &PaillierCiphertext) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + 64);
    out.push(tag);
    out.push(kind as u8);
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&c.0.to_bytes_be());
    out
}

fn decode_paillier_cell(
    bytes: &[u8],
) -> Result<(u8, AggKind, u64, PaillierCiphertext), EncryptError> {
    if bytes.len() < 10 {
        return Err(EncryptError::BadCiphertext);
    }
    let tag = bytes[0];
    let kind = match bytes[1] {
        0 => AggKind::Single,
        1 => AggKind::Sum,
        2 => AggKind::Avg,
        _ => return Err(EncryptError::BadCiphertext),
    };
    let count = u64::from_be_bytes(bytes[2..10].try_into().expect("8 bytes"));
    Ok((
        tag,
        kind,
        count,
        PaillierCiphertext(BigUint::from_bytes_be(&bytes[10..])),
    ))
}

/// Homomorphically add two Paillier cells (same key, same numeric
/// tag); counts accumulate so the sum can be decoded later. Only the
/// *public* key half is needed — aggregating providers never hold the
/// decryption key.
pub fn paillier_add_cells(
    a: &EncValue,
    b: &EncValue,
    pk: &crate::paillier::PaillierPublic,
) -> Result<EncValue, EncryptError> {
    if a.scheme != EncScheme::Paillier || b.scheme != EncScheme::Paillier || a.key_id != b.key_id {
        return Err(EncryptError::BadCiphertext);
    }
    let (ta, _, ca, pa) = decode_paillier_cell(&a.bytes)?;
    let (tb, _, cb, pb) = decode_paillier_cell(&b.bytes)?;
    if ta != tb {
        return Err(EncryptError::BadCiphertext);
    }
    let sum = pk.add(&pa, &pb);
    Ok(EncValue {
        scheme: EncScheme::Paillier,
        key_id: a.key_id,
        bytes: Arc::from(encode_paillier_cell(ta, AggKind::Sum, ca + cb, &sum)),
    })
}

/// Re-tag an accumulated Paillier sum as SUM or AVG output.
pub fn paillier_finish(cell: &EncValue, kind: AggKind) -> Result<EncValue, EncryptError> {
    if cell.scheme != EncScheme::Paillier {
        return Err(EncryptError::BadCiphertext);
    }
    let (tag, _, count, c) = decode_paillier_cell(&cell.bytes)?;
    // SUM/AVG results are numerics even over integer inputs (AVG) —
    // keep the tag so SUM of ints stays integral.
    Ok(EncValue {
        scheme: EncScheme::Paillier,
        key_id: cell.key_id,
        bytes: Arc::from(encode_paillier_cell(tag, kind, count, &c)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_algebra::Date;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> (ClusterKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let k = ClusterKey::generate(&mut rng, 1, 256);
        (k, rng)
    }

    #[test]
    fn det_roundtrip_all_types() {
        let (k, mut rng) = key();
        let values = [
            Value::Int(-5),
            Value::Num(123.45),
            Value::str("stroke"),
            Value::Date(Date::parse("1994-01-01").unwrap()),
            Value::Bool(true),
        ];
        for v in values {
            let enc = encrypt_value(&mut rng, &v, EncScheme::Deterministic, &k).unwrap();
            let dec = decrypt_value(&enc, &k).unwrap();
            assert!(dec.sql_eq(&v), "{v:?}");
        }
    }

    #[test]
    fn det_preserves_equality_hides_value() {
        let (k, mut rng) = key();
        let a = encrypt_value(&mut rng, &Value::str("x"), EncScheme::Deterministic, &k).unwrap();
        let b = encrypt_value(&mut rng, &Value::str("x"), EncScheme::Deterministic, &k).unwrap();
        let c = encrypt_value(&mut rng, &Value::str("y"), EncScheme::Deterministic, &k).unwrap();
        assert!(a.sql_eq(&b));
        assert!(!a.sql_eq(&c));
    }

    #[test]
    fn rnd_hides_equality() {
        let (k, mut rng) = key();
        let a = encrypt_value(&mut rng, &Value::Int(5), EncScheme::Random, &k).unwrap();
        let b = encrypt_value(&mut rng, &Value::Int(5), EncScheme::Random, &k).unwrap();
        assert!(!a.sql_eq(&b), "randomized ciphertexts never compare equal");
        assert!(decrypt_value(&a, &k).unwrap().sql_eq(&Value::Int(5)));
    }

    #[test]
    fn ope_preserves_order() {
        let (k, mut rng) = key();
        let enc = |v: f64, rng: &mut StdRng| {
            encrypt_value(rng, &Value::Num(v), EncScheme::Ope, &k).unwrap()
        };
        let a = enc(10.5, &mut rng);
        let b = enc(100.0, &mut rng);
        let c = enc(100.0, &mut rng);
        assert!(a.sql_cmp(&b).unwrap().is_lt());
        assert!(b.sql_cmp(&c).unwrap().is_eq());
        assert!(decrypt_value(&a, &k).unwrap().sql_eq(&Value::Num(10.5)));
    }

    #[test]
    fn ope_rejects_strings() {
        let (k, mut rng) = key();
        assert_eq!(
            encrypt_value(&mut rng, &Value::str("abc"), EncScheme::Ope, &k).unwrap_err(),
            EncryptError::UnsupportedType("strings/bools under OPE")
        );
    }

    #[test]
    fn paillier_sum_roundtrip() {
        let (k, mut rng) = key();
        let prices = [120.0_f64, 80.5, 99.5];
        let cells: Vec<EncValue> = prices
            .iter()
            .map(|p| {
                match encrypt_value(&mut rng, &Value::Num(*p), EncScheme::Paillier, &k).unwrap() {
                    Value::Enc(e) => e,
                    _ => unreachable!(),
                }
            })
            .collect();
        let mut acc = cells[0].clone();
        for c in &cells[1..] {
            acc = paillier_add_cells(&acc, c, &k.paillier_public()).unwrap();
        }
        let sum_cell = paillier_finish(&acc, AggKind::Sum).unwrap();
        let sum = decrypt_value(&Value::Enc(sum_cell), &k).unwrap();
        let expected: f64 = prices.iter().sum();
        match sum {
            Value::Num(f) => assert!((f - expected).abs() < 1e-9, "{f} vs {expected}"),
            other => panic!("expected Num, got {other:?}"),
        }
        // AVG decoding divides by the term count.
        let avg_cell = paillier_finish(&acc, AggKind::Avg).unwrap();
        let avg = decrypt_value(&Value::Enc(avg_cell), &k).unwrap();
        match avg {
            Value::Num(f) => {
                assert!(
                    (f - expected / 3.0).abs() < 1e-9,
                    "{f} vs {}",
                    expected / 3.0
                )
            }
            other => panic!("expected Num, got {other:?}"),
        }
    }

    #[test]
    fn paillier_int_roundtrip_is_exact_above_2_pow_53() {
        let (k, mut rng) = key();
        // 2⁵³ + 1 is not representable in f64; the decode path must not
        // round-trip through floats.
        for v in [
            (1i64 << 53) + 1,
            -(1i64 << 53) - 1,
            i64::MAX - 7,
            i64::MIN + 7,
        ] {
            let enc = encrypt_value(&mut rng, &Value::Int(v), EncScheme::Paillier, &k).unwrap();
            assert_eq!(decrypt_value(&enc, &k).unwrap(), Value::Int(v), "{v}");
        }
    }

    #[test]
    fn batch_matches_one_shot() {
        let (k, _) = key();
        let values: Vec<Value> = vec![Value::Int(7), Value::Null, Value::Num(1.25), Value::Int(-3)];
        for scheme in [
            EncScheme::Deterministic,
            EncScheme::Random,
            EncScheme::Ope,
            EncScheme::Paillier,
        ] {
            // Identical RNG stream → identical ciphertext bytes.
            let batch = encrypt_batch(&mut StdRng::seed_from_u64(5), &values, scheme, &k).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let single: Vec<Value> = values
                .iter()
                .map(|v| encrypt_value(&mut rng, v, scheme, &k).unwrap())
                .collect();
            assert_eq!(batch, single, "{scheme:?}");
            let dec = decrypt_batch(&batch, &k).unwrap();
            for (d, v) in dec.iter().zip(&values) {
                assert!(d.sql_eq(v) || (d.is_null() && v.is_null()), "{scheme:?}");
            }
        }
    }

    #[test]
    fn wrong_key_fails() {
        let (k1, mut rng) = key();
        let k2 = ClusterKey::generate(&mut rng, 2, 256);
        let enc = encrypt_value(&mut rng, &Value::Int(1), EncScheme::Deterministic, &k1).unwrap();
        assert_eq!(
            decrypt_value(&enc, &k2).unwrap_err(),
            EncryptError::BadCiphertext
        );
    }

    #[test]
    fn null_passes_through() {
        let (k, mut rng) = key();
        let enc = encrypt_value(&mut rng, &Value::Null, EncScheme::Random, &k).unwrap();
        assert!(enc.is_null());
        assert!(decrypt_value(&Value::Null, &k).unwrap().is_null());
    }

    #[test]
    fn double_encryption_rejected() {
        let (k, mut rng) = key();
        let enc = encrypt_value(&mut rng, &Value::Int(1), EncScheme::Deterministic, &k).unwrap();
        assert_eq!(
            encrypt_value(&mut rng, &enc, EncScheme::Random, &k).unwrap_err(),
            EncryptError::WrongForm
        );
    }
}
