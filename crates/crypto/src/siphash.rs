//! SipHash-2-4 keyed pseudo-random function.
//!
//! Used as the PRF driving the order-preserving encoding's interval
//! splits and for deriving per-scheme sub-keys from a cluster key.

/// SipHash-2-4 of `data` under a 128-bit key.
pub fn siphash24(key: &[u8; 16], data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
    let mut v0 = 0x736f_6d65_7073_6575_u64 ^ k0;
    let mut v1 = 0x646f_7261_6e64_6f6d_u64 ^ k1;
    let mut v2 = 0x6c79_6765_6e65_7261_u64 ^ k0;
    let mut v3 = 0x7465_6462_7974_6573_u64 ^ k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v3 ^= m;
    sipround!();
    sipround!();
    v0 ^= m;

    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Derive a 16-byte sub-key for a labelled purpose from a cluster key.
pub fn derive_subkey(key: &[u8; 16], label: &str) -> [u8; 16] {
    let a = siphash24(key, label.as_bytes());
    let b = siphash24(key, &[label.as_bytes(), &[0x5a]].concat());
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 reference vectors (key 000102…0f, messages
    /// of increasing length 00 01 02 …).
    #[test]
    fn reference_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let msg: Vec<u8> = (0..8).map(|i| i as u8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(siphash24(&key, &msg[..len]), *want, "length {len}");
        }
    }

    #[test]
    fn key_sensitivity() {
        let k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k2[0] = 1;
        assert_ne!(siphash24(&k1, b"data"), siphash24(&k2, b"data"));
    }

    #[test]
    fn subkey_derivation_is_stable_and_distinct() {
        let k = [7u8; 16];
        assert_eq!(derive_subkey(&k, "det"), derive_subkey(&k, "det"));
        assert_ne!(derive_subkey(&k, "det"), derive_subkey(&k, "ope"));
    }
}
