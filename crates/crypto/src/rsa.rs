//! Textbook RSA signatures and hybrid envelopes for query dispatch.
//!
//! §6: "The communication to each subject will be signed with the
//! private key of the user and encrypted with the subject's public key.
//! Having a sub-query signed allows the recipient to verify its
//! authenticity and integrity. Encrypting a sub-query with the public
//! key of the recipient supports confidentiality."
//!
//! [`SignedEnvelope::seal`] implements `[[payload]_priSender]_pubRecipient`
//! as sign-then-encrypt: an RSA signature over the SHA-256 digest,
//! then hybrid encryption (a fresh XTEA session key, itself
//! RSA-encrypted). Demo-grade padding — see the crate-level disclaimer.

use crate::bignum::BigUint;
use crate::sha256::sha256;
use crate::xtea;
use rand::Rng;

/// RSA public key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublic {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent (65537).
    pub e: BigUint,
}

/// RSA keypair.
#[derive(Clone, Debug)]
pub struct RsaKeypair {
    /// Public half.
    pub public: RsaPublic,
    d: BigUint,
}

impl RsaKeypair {
    /// Generate an `bits`-bit keypair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> RsaKeypair {
        assert!(bits >= 384, "modulus must exceed digest + padding size");
        let e = BigUint::from_u64(65_537);
        loop {
            let p = BigUint::gen_prime(rng, bits / 2);
            let q = BigUint::gen_prime(rng, bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            if let Some(d) = e.modinv(&phi) {
                return RsaKeypair {
                    public: RsaPublic { n, e },
                    d,
                };
            }
        }
    }

    /// Sign `message`: RSA private operation over its SHA-256 digest.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let digest = BigUint::from_bytes_be(&sha256(message));
        digest.modpow(&self.d, &self.public.n).to_bytes_be()
    }

    /// RSA private decryption of a raw integer block.
    fn private_op(&self, block: &BigUint) -> BigUint {
        block.modpow(&self.d, &self.public.n)
    }
}

impl RsaPublic {
    /// Verify a signature produced by [`RsaKeypair::sign`].
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        let sig = BigUint::from_bytes_be(signature);
        if sig >= self.n {
            return false;
        }
        let recovered = sig.modpow(&self.e, &self.n);
        recovered == BigUint::from_bytes_be(&sha256(message))
    }

    /// RSA public encryption of a short block (the session key), with
    /// random non-zero padding: `0x02 ‖ random ‖ 0x00 ‖ block`.
    fn encrypt_block<R: Rng + ?Sized>(&self, rng: &mut R, block: &[u8]) -> Vec<u8> {
        let modulus_len = self.n.to_bytes_be().len();
        assert!(
            block.len() + 11 <= modulus_len,
            "block too large for modulus"
        );
        let mut padded = Vec::with_capacity(modulus_len - 1);
        padded.push(0x02);
        for _ in 0..(modulus_len - 2 - block.len() - 1) {
            padded.push(rng.gen_range(1..=u8::MAX));
        }
        padded.push(0x00);
        padded.extend_from_slice(block);
        BigUint::from_bytes_be(&padded)
            .modpow(&self.e, &self.n)
            .to_bytes_be()
    }
}

fn unpad(padded: &[u8]) -> Option<Vec<u8>> {
    if padded.first() != Some(&0x02) {
        return None;
    }
    let zero = padded.iter().skip(1).position(|&b| b == 0)? + 1;
    Some(padded[zero + 1..].to_vec())
}

/// A sub-query envelope: signed by the sender, encrypted for the
/// recipient (`[[payload]_priS]_pubR`).
#[derive(Clone, Debug)]
pub struct SignedEnvelope {
    /// RSA-encrypted XTEA session key.
    pub wrapped_key: Vec<u8>,
    /// XTEA-CTR encrypted `payload`.
    pub body: Vec<u8>,
    /// RSA signature over the plaintext payload.
    pub signature: Vec<u8>,
}

impl SignedEnvelope {
    /// Sign `payload` with `sender` and encrypt it for `recipient`.
    pub fn seal<R: Rng + ?Sized>(
        rng: &mut R,
        payload: &[u8],
        sender: &RsaKeypair,
        recipient: &RsaPublic,
    ) -> SignedEnvelope {
        let signature = sender.sign(payload);
        let mut session_key = [0u8; 16];
        rng.fill(&mut session_key);
        let nonce: u64 = rng.gen();
        let body = xtea::rnd_encrypt(&session_key, nonce, payload);
        let wrapped_key = recipient.encrypt_block(rng, &session_key);
        SignedEnvelope {
            wrapped_key,
            body,
            signature,
        }
    }

    /// Decrypt with `recipient` and verify the signature against
    /// `sender`. Returns the payload, or `None` when decryption or
    /// verification fails (tampering, wrong recipient, wrong sender).
    pub fn open(&self, recipient: &RsaKeypair, sender: &RsaPublic) -> Option<Vec<u8>> {
        let wrapped = BigUint::from_bytes_be(&self.wrapped_key);
        if wrapped >= recipient.public.n {
            return None;
        }
        let padded = recipient.private_op(&wrapped).to_bytes_be();
        let session_key: [u8; 16] = unpad(&padded)?.try_into().ok()?;
        let payload = xtea::rnd_decrypt(&session_key, &self.body)?;
        if sender.verify(&payload, &self.signature) {
            Some(payload)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (RsaKeypair, RsaKeypair, StdRng) {
        let mut rng = StdRng::seed_from_u64(1234);
        let user = RsaKeypair::generate(&mut rng, 512);
        let provider = RsaKeypair::generate(&mut rng, 512);
        (user, provider, rng)
    }

    #[test]
    fn sign_verify() {
        let (user, _, _) = keys();
        let msg = b"select T, avg(P) from ...";
        let sig = user.sign(msg);
        assert!(user.public.verify(msg, &sig));
        assert!(!user.public.verify(b"select *", &sig));
    }

    #[test]
    fn envelope_roundtrip() {
        let (user, provider, mut rng) = keys();
        let payload = b"[[qY,(P,kP)]priU]pubY payload".to_vec();
        let env = SignedEnvelope::seal(&mut rng, &payload, &user, &provider.public);
        let opened = env.open(&provider, &user.public).unwrap();
        assert_eq!(opened, payload);
    }

    #[test]
    fn tampered_body_rejected() {
        let (user, provider, mut rng) = keys();
        let payload = b"authentic request".to_vec();
        let mut env = SignedEnvelope::seal(&mut rng, &payload, &user, &provider.public);
        // Flip a bit in the encrypted body: signature check must fail.
        let last = env.body.len() - 1;
        env.body[last] ^= 1;
        assert!(env.open(&provider, &user.public).is_none());
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let (user, provider, mut rng) = keys();
        let eavesdropper = RsaKeypair::generate(&mut rng, 512);
        let env = SignedEnvelope::seal(&mut rng, b"secret", &user, &provider.public);
        assert!(env.open(&eavesdropper, &user.public).is_none());
    }

    #[test]
    fn wrong_sender_fails_verification() {
        let (user, provider, mut rng) = keys();
        let impostor = RsaKeypair::generate(&mut rng, 512);
        let env = SignedEnvelope::seal(&mut rng, b"request", &impostor, &provider.public);
        // Recipient expects the envelope to be signed by `user`.
        assert!(env.open(&provider, &user.public).is_none());
    }

    #[test]
    fn signature_is_deterministic_per_message() {
        let (user, _, _) = keys();
        assert_eq!(user.sign(b"m"), user.sign(b"m"));
        assert_ne!(user.sign(b"m"), user.sign(b"n"));
    }
}
