//! The Paillier cryptosystem: additively homomorphic encryption.
//!
//! Enables SUM/AVG over encrypted values (§7 lists Paillier among the
//! four schemes the tool models). With `g = n + 1`, encryption is
//! `c = (1 + m·n) · rⁿ mod n²` and decryption
//! `m = L(c^λ mod n²) · µ mod n` with `L(x) = (x-1)/n`.
//!
//! Signed 64-bit integers are encoded with a `2^63` offset; the
//! aggregation layer tracks how many ciphertexts were added so the
//! offsets can be removed after decryption (see
//! [`PaillierKeypair::decode_sum`]).

use crate::bignum::{BigUint, Montgomery};
use rand::Rng;
use std::sync::OnceLock;

/// Offset added to signed values so they embed into the non-negative
/// plaintext space.
pub const ENCODE_OFFSET: i128 = 1 << 63;

/// Public half of a Paillier keypair: enough to encrypt and to add
/// ciphertexts.
///
/// Carries a lazily built, shared [`Montgomery`] context for `n²` so
/// repeated encryptions/additions under one key pay the reduction
/// setup once — the context rides along in the `Arc`'d keypair that
/// [`crate::keyring::ClusterKey`] clones share.
#[derive(Debug)]
pub struct PaillierPublic {
    /// Modulus `n = p·q`.
    pub n: BigUint,
    /// `n²` (cached).
    pub n2: BigUint,
    /// Montgomery context for `n²`, built on first use.
    mont2: OnceLock<Montgomery>,
}

impl Clone for PaillierPublic {
    fn clone(&self) -> Self {
        let mont2 = OnceLock::new();
        if let Some(ctx) = self.mont2.get() {
            let _ = mont2.set(ctx.clone());
        }
        PaillierPublic {
            n: self.n.clone(),
            n2: self.n2.clone(),
            mont2,
        }
    }
}

impl PartialEq for PaillierPublic {
    fn eq(&self, other: &Self) -> bool {
        // The Montgomery cache is derived state, not identity.
        self.n == other.n
    }
}

impl Eq for PaillierPublic {}

/// A Paillier ciphertext (value in `[0, n²)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaillierCiphertext(pub BigUint);

/// Full keypair.
#[derive(Clone, Debug)]
pub struct PaillierKeypair {
    /// Public part.
    pub public: PaillierPublic,
    /// `λ = lcm(p-1, q-1)`.
    lambda: BigUint,
    /// `µ = λ⁻¹ mod n` (valid for `g = n+1`).
    mu: BigUint,
}

impl PaillierPublic {
    /// Build a public key from `n` (computes and caches `n²`).
    pub fn from_modulus(n: BigUint) -> PaillierPublic {
        let n2 = n.mul(&n);
        PaillierPublic {
            n,
            n2,
            mont2: OnceLock::new(),
        }
    }

    /// The shared Montgomery context for `n²` (built on first use).
    pub(crate) fn mont2(&self) -> &Montgomery {
        self.mont2
            .get_or_init(|| Montgomery::new(&self.n2).expect("n² is odd and > 1"))
    }

    /// Encrypt a non-negative plaintext `m < n`.
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, m: &BigUint) -> PaillierCiphertext {
        assert!(m < &self.n, "plaintext out of range");
        // r coprime with n (overwhelmingly likely; retry otherwise).
        let r = loop {
            let r = BigUint::random_below(rng, &self.n);
            if !r.is_zero() && r.gcd(&self.n).is_one() {
                break r;
            }
        };
        // c = (1 + m·n) · rⁿ mod n²; m < n makes 1 + m·n < n² already.
        let ctx = self.mont2();
        let gm = BigUint::one().add(&m.mul(&self.n));
        let rn = ctx.pow(&r, &self.n);
        PaillierCiphertext(ctx.mulmod(&gm, &rn))
    }

    /// Homomorphic addition: `Dec(add(c1,c2)) = m1 + m2 (mod n)`.
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(self.mont2().mulmod(&a.0, &b.0))
    }

    /// Homomorphic scalar multiplication: `Dec(mul_scalar(c,k)) = k·m`.
    pub fn mul_scalar(&self, c: &PaillierCiphertext, k: u64) -> PaillierCiphertext {
        PaillierCiphertext(self.mont2().pow(&c.0, &BigUint::from_u64(k)))
    }

    /// Neutral element (encryption of 0 with r = 1; fine for use as an
    /// accumulator seed, not as a fresh ciphertext).
    pub fn neutral(&self) -> PaillierCiphertext {
        PaillierCiphertext(BigUint::one())
    }

    /// Encode a signed value for encryption.
    pub fn encode_signed(&self, v: i64) -> BigUint {
        let shifted = (v as i128) + ENCODE_OFFSET;
        BigUint::from_u128(shifted as u128)
    }
}

impl PaillierKeypair {
    /// Generate a keypair with an `bits`-bit modulus.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> PaillierKeypair {
        assert!(bits >= 128, "modulus too small even for testing");
        let (p, q) = loop {
            let p = BigUint::gen_prime(rng, bits / 2);
            let q = BigUint::gen_prime(rng, bits / 2);
            if p != q {
                break (p, q);
            }
        };
        let n = p.mul(&q);
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        // λ = lcm(p-1, q-1) = (p-1)(q-1)/gcd(p-1, q-1).
        let gcd = p1.gcd(&q1);
        let lambda = p1.mul(&q1).divmod(&gcd).0;
        // With g = n+1: µ = λ⁻¹ mod n.
        let mu = lambda
            .rem(&n)
            .modinv(&n)
            .expect("λ is invertible mod n for distinct primes");
        PaillierKeypair {
            public: PaillierPublic::from_modulus(n),
            lambda,
            mu,
        }
    }

    /// Decrypt to the non-negative plaintext.
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        let n = &self.public.n;
        let x = self.public.mont2().pow(&c.0, &self.lambda);
        // L(x) = (x - 1) / n.
        let l = x.sub(&BigUint::one()).divmod(n).0;
        l.mulmod(&self.mu, n)
    }

    /// Decrypt a sum of `count` encoded signed values, removing the
    /// per-term offsets.
    pub fn decode_sum(&self, c: &PaillierCiphertext, count: u64) -> i128 {
        let total = self.decrypt(c).to_u128() as i128;
        total - (count as i128) * ENCODE_OFFSET
    }

    /// Serialize the keypair (`n`, `λ`, `µ`) for Def. 6.1 key
    /// provisioning over a wire. The bytes are secret material — they
    /// must only ever travel inside a sealed
    /// [`SignedEnvelope`](crate::rsa::SignedEnvelope).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [&self.public.n, &self.lambda, &self.mu] {
            let b = part.to_bytes_be();
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(&b);
        }
        out
    }

    /// Reconstruct a keypair from [`PaillierKeypair::to_bytes`] output
    /// (`None` on malformed input). `n²` and the Montgomery context are
    /// recomputed locally.
    pub fn from_bytes(bytes: &[u8]) -> Option<PaillierKeypair> {
        let mut at = 0usize;
        let mut next = || -> Option<BigUint> {
            let len = u32::from_be_bytes(bytes.get(at..at + 4)?.try_into().ok()?) as usize;
            at += 4;
            let b = bytes.get(at..at + len)?;
            at += len;
            Some(BigUint::from_bytes_be(b))
        };
        let n = next()?;
        let lambda = next()?;
        let mu = next()?;
        if at != bytes.len() {
            return None;
        }
        Some(PaillierKeypair {
            public: PaillierPublic::from_modulus(n),
            lambda,
            mu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> (PaillierKeypair, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let kp = PaillierKeypair::generate(&mut rng, 256);
        (kp, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (kp, mut rng) = keypair();
        for m in [0u64, 1, 42, 1_000_000, u64::MAX] {
            let mb = BigUint::from_u64(m);
            let c = kp.public.encrypt(&mut rng, &mb);
            assert_eq!(kp.decrypt(&c), mb, "m = {m}");
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (kp, mut rng) = keypair();
        let m = BigUint::from_u64(7);
        let c1 = kp.public.encrypt(&mut rng, &m);
        let c2 = kp.public.encrypt(&mut rng, &m);
        assert_ne!(c1, c2, "same plaintext, fresh randomness");
        assert_eq!(kp.decrypt(&c1), kp.decrypt(&c2));
    }

    #[test]
    fn additive_homomorphism() {
        let (kp, mut rng) = keypair();
        let a = kp.public.encrypt(&mut rng, &BigUint::from_u64(1234));
        let b = kp.public.encrypt(&mut rng, &BigUint::from_u64(8766));
        let sum = kp.public.add(&a, &b);
        assert_eq!(kp.decrypt(&sum).to_u128(), 10_000);
    }

    #[test]
    fn scalar_multiplication() {
        let (kp, mut rng) = keypair();
        let c = kp.public.encrypt(&mut rng, &BigUint::from_u64(25));
        let c4 = kp.public.mul_scalar(&c, 4);
        assert_eq!(kp.decrypt(&c4).to_u128(), 100);
    }

    #[test]
    fn signed_sum_with_offsets() {
        let (kp, mut rng) = keypair();
        let values: [i64; 4] = [100, -250, 75, -10];
        let mut acc = kp.public.neutral();
        for v in values {
            let enc = kp.public.encrypt(&mut rng, &kp.public.encode_signed(v));
            acc = kp.public.add(&acc, &enc);
        }
        let sum = kp.decode_sum(&acc, values.len() as u64);
        assert_eq!(sum, -85);
    }

    #[test]
    fn neutral_is_additive_identity() {
        let (kp, mut rng) = keypair();
        let c = kp.public.encrypt(&mut rng, &BigUint::from_u64(5));
        let with_neutral = kp.public.add(&c, &kp.public.neutral());
        assert_eq!(kp.decrypt(&with_neutral).to_u128(), 5);
    }
}
