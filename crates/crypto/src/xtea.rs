//! XTEA block cipher and the two symmetric value schemes.
//!
//! XTEA (64-bit blocks, 128-bit keys, 64 Feistel rounds) is small
//! enough to implement from scratch and fast enough that the
//! deterministic/randomized schemes of the paper's evaluation have the
//! right *relative* cost against OPE and Paillier.
//!
//! * **Deterministic** encryption is XTEA-ECB over the length-prefixed,
//!   zero-padded canonical encoding of a value: identical plaintexts
//!   produce identical ciphertexts, enabling equality predicates and
//!   equi-joins on ciphertexts (as in CryptDB's DET onion layer).
//! * **Randomized** encryption is XTEA-CTR with a fresh 8-byte nonce:
//!   no two encryptions collide, nothing can be computed on them.

const ROUNDS: u32 = 32; // 32 cycles = 64 Feistel rounds
const DELTA: u32 = 0x9e37_79b9;

/// Expanded XTEA key: the four 32-bit words the round function indexes.
///
/// The expansion itself is just an endianness transform, but the byte
/// slicing sat inside every block call — batch encryption of a column
/// now expands the key once and reuses the schedule for every cell.
#[derive(Clone, Copy, Debug)]
pub struct XteaSchedule {
    k: [u32; 4],
}

impl XteaSchedule {
    /// Expand a 128-bit key.
    pub fn new(key: &[u8; 16]) -> XteaSchedule {
        XteaSchedule {
            k: [
                u32::from_le_bytes(key[0..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(key[4..8].try_into().expect("4 bytes")),
                u32::from_le_bytes(key[8..12].try_into().expect("4 bytes")),
                u32::from_le_bytes(key[12..16].try_into().expect("4 bytes")),
            ],
        }
    }

    /// Encrypt one 64-bit block.
    pub fn encrypt_block(&self, block: u64) -> u64 {
        let k = &self.k;
        let mut v0 = block as u32;
        let mut v1 = (block >> 32) as u32;
        let mut sum = 0u32;
        for _ in 0..ROUNDS {
            v0 = v0.wrapping_add(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(k[(sum & 3) as usize])),
            );
            sum = sum.wrapping_add(DELTA);
            v1 = v1.wrapping_add(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(k[((sum >> 11) & 3) as usize])),
            );
        }
        (v0 as u64) | ((v1 as u64) << 32)
    }

    /// Decrypt one 64-bit block.
    pub fn decrypt_block(&self, block: u64) -> u64 {
        let k = &self.k;
        let mut v0 = block as u32;
        let mut v1 = (block >> 32) as u32;
        let mut sum = DELTA.wrapping_mul(ROUNDS);
        for _ in 0..ROUNDS {
            v1 = v1.wrapping_sub(
                (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                    ^ (sum.wrapping_add(k[((sum >> 11) & 3) as usize])),
            );
            sum = sum.wrapping_sub(DELTA);
            v0 = v0.wrapping_sub(
                (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                    ^ (sum.wrapping_add(k[(sum & 3) as usize])),
            );
        }
        (v0 as u64) | ((v1 as u64) << 32)
    }

    /// Deterministic encryption: length-prefixed, zero-padded, ECB.
    pub fn det_encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut data = Vec::with_capacity((plaintext.len() + 4).next_multiple_of(8));
        data.extend_from_slice(&(plaintext.len() as u32).to_be_bytes());
        data.extend_from_slice(plaintext);
        while data.len() % 8 != 0 {
            data.push(0);
        }
        for chunk in data.chunks_exact_mut(8) {
            let block = u64::from_be_bytes((&*chunk).try_into().expect("8 bytes"));
            chunk.copy_from_slice(&self.encrypt_block(block).to_be_bytes());
        }
        data
    }

    /// Inverse of [`XteaSchedule::det_encrypt`]. `None` on malformed
    /// input.
    pub fn det_decrypt(&self, ciphertext: &[u8]) -> Option<Vec<u8>> {
        if ciphertext.is_empty() || ciphertext.len() % 8 != 0 {
            return None;
        }
        let mut data = Vec::with_capacity(ciphertext.len());
        for chunk in ciphertext.chunks_exact(8) {
            let block = u64::from_be_bytes(chunk.try_into().expect("8 bytes"));
            data.extend_from_slice(&self.decrypt_block(block).to_be_bytes());
        }
        let len = u32::from_be_bytes(data[..4].try_into().expect("4 bytes")) as usize;
        if len > data.len() - 4 {
            return None;
        }
        data.truncate(4 + len);
        data.drain(..4);
        Some(data)
    }

    /// Randomized encryption: 8-byte nonce ‖ XTEA-CTR keystream XOR.
    pub fn rnd_encrypt(&self, nonce: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + plaintext.len());
        out.extend_from_slice(&nonce.to_be_bytes());
        for (i, chunk) in plaintext.chunks(8).enumerate() {
            let keystream = self
                .encrypt_block(nonce.wrapping_add(i as u64 + 1))
                .to_be_bytes();
            for (j, &b) in chunk.iter().enumerate() {
                out.push(b ^ keystream[j]);
            }
        }
        out
    }

    /// Inverse of [`XteaSchedule::rnd_encrypt`].
    pub fn rnd_decrypt(&self, ciphertext: &[u8]) -> Option<Vec<u8>> {
        if ciphertext.len() < 8 {
            return None;
        }
        let nonce = u64::from_be_bytes(ciphertext[..8].try_into().expect("8 bytes"));
        let body = &ciphertext[8..];
        let mut out = Vec::with_capacity(body.len());
        for (i, chunk) in body.chunks(8).enumerate() {
            let keystream = self
                .encrypt_block(nonce.wrapping_add(i as u64 + 1))
                .to_be_bytes();
            for (j, &b) in chunk.iter().enumerate() {
                out.push(b ^ keystream[j]);
            }
        }
        Some(out)
    }
}

/// Encrypt one 64-bit block (one-shot key expansion).
pub fn encrypt_block(key: &[u8; 16], block: u64) -> u64 {
    XteaSchedule::new(key).encrypt_block(block)
}

/// Decrypt one 64-bit block (one-shot key expansion).
pub fn decrypt_block(key: &[u8; 16], block: u64) -> u64 {
    XteaSchedule::new(key).decrypt_block(block)
}

/// Deterministic encryption: length-prefixed, zero-padded, ECB.
pub fn det_encrypt(key: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    XteaSchedule::new(key).det_encrypt(plaintext)
}

/// Inverse of [`det_encrypt`]. Returns `None` on malformed input.
pub fn det_decrypt(key: &[u8; 16], ciphertext: &[u8]) -> Option<Vec<u8>> {
    XteaSchedule::new(key).det_decrypt(ciphertext)
}

/// Randomized encryption: 8-byte nonce ‖ XTEA-CTR keystream XOR.
pub fn rnd_encrypt(key: &[u8; 16], nonce: u64, plaintext: &[u8]) -> Vec<u8> {
    XteaSchedule::new(key).rnd_encrypt(nonce, plaintext)
}

/// Inverse of [`rnd_encrypt`].
pub fn rnd_decrypt(key: &[u8; 16], ciphertext: &[u8]) -> Option<Vec<u8>> {
    XteaSchedule::new(key).rnd_decrypt(ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let key = [3u8; 16];
        for v in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(decrypt_block(&key, encrypt_block(&key, v)), v);
        }
    }

    #[test]
    fn block_is_keyed() {
        let k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k2[15] = 1;
        assert_ne!(encrypt_block(&k1, 42), encrypt_block(&k2, 42));
    }

    #[test]
    fn det_roundtrip_various_lengths() {
        let key = [9u8; 16];
        for len in 0..40 {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = det_encrypt(&key, &msg);
            assert_eq!(ct.len() % 8, 0);
            assert_eq!(det_decrypt(&key, &ct).unwrap(), msg);
        }
    }

    #[test]
    fn det_is_deterministic_and_injective() {
        let key = [5u8; 16];
        assert_eq!(det_encrypt(&key, b"stroke"), det_encrypt(&key, b"stroke"));
        assert_ne!(det_encrypt(&key, b"stroke"), det_encrypt(&key, b"strokf"));
        // Padding must not cause collisions between "a" and "a\0".
        assert_ne!(det_encrypt(&key, b"a"), det_encrypt(&key, b"a\0"));
    }

    #[test]
    fn rnd_roundtrip_and_nondeterminism() {
        let key = [1u8; 16];
        let msg = b"premium=250".to_vec();
        let c1 = rnd_encrypt(&key, 1111, &msg);
        let c2 = rnd_encrypt(&key, 2222, &msg);
        assert_ne!(c1, c2, "different nonces, different ciphertexts");
        assert_eq!(rnd_decrypt(&key, &c1).unwrap(), msg);
        assert_eq!(rnd_decrypt(&key, &c2).unwrap(), msg);
    }

    #[test]
    fn decrypt_rejects_malformed() {
        let key = [1u8; 16];
        assert!(det_decrypt(&key, &[1, 2, 3]).is_none());
        assert!(det_decrypt(&key, &[]).is_none());
        assert!(rnd_decrypt(&key, &[0; 4]).is_none());
    }

    #[test]
    fn wrong_key_garbles() {
        let k1 = [1u8; 16];
        let k2 = [2u8; 16];
        let ct = det_encrypt(&k1, b"secret");
        // Either fails to parse or yields different bytes.
        match det_decrypt(&k2, &ct) {
            None => {}
            Some(pt) => assert_ne!(pt, b"secret"),
        }
    }
}
