//! Order-preserving encryption (OPE).
//!
//! A simplified Boldyreva-style construction: the 64-bit plaintext
//! order-code space is mapped into a 96-bit ciphertext space by a
//! keyed binary descent. At each of the 64 levels the current
//! ciphertext range is split at a pseudo-random point (SipHash over the
//! descent path) constrained so both halves stay large enough to embed
//! the remaining domain; the plaintext bit selects the half. The
//! mapping is strictly monotone and injective, and decryption runs the
//! same descent.
//!
//! Supported plaintexts are totally ordered fixed-width scalars:
//! integers, numerics (via the standard IEEE-754 order-preserving bit
//! trick) and dates. Strings are *not* supported — range predicates on
//! strings fall back to plaintext evaluation (see
//! `mpq_core::capability`).

use crate::siphash::siphash24;

/// Ciphertext-space bits. 96 bits leave ≥ 2^32 slack over the 64-bit
/// domain, so every level can split with both halves non-degenerate.
const RANGE_BITS: u32 = 96;

/// Type tags carried in ciphertexts so decryption restores the exact
/// plaintext type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpeType {
    /// `i64`.
    Int = 1,
    /// `f64`.
    Num = 2,
    /// Days since epoch (`i32`).
    Date = 3,
}

impl OpeType {
    fn from_tag(t: u8) -> Option<OpeType> {
        match t {
            1 => Some(OpeType::Int),
            2 => Some(OpeType::Num),
            3 => Some(OpeType::Date),
            _ => None,
        }
    }
}

/// Map an `i64` to its order-preserving `u64` code.
pub fn int_to_code(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Inverse of [`int_to_code`].
pub fn code_to_int(c: u64) -> i64 {
    (c ^ (1 << 63)) as i64
}

/// Map an `f64` to an order-preserving `u64` code (standard IEEE-754
/// trick; total order, NaN unsupported).
pub fn num_to_code(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`num_to_code`].
pub fn code_to_num(c: u64) -> f64 {
    let b = if c >> 63 == 1 { c & !(1 << 63) } else { !c };
    f64::from_bits(b)
}

/// Encrypt a 64-bit order code into a 96-bit order-preserving code.
pub fn ope_encrypt_code(key: &[u8; 16], code: u64) -> u128 {
    let mut lo: u128 = 0;
    let mut width: u128 = 1 << RANGE_BITS;
    // Path through the descent, fed to the PRF.
    let mut path = [0u8; 9]; // level byte + 8 path bytes
    for level in 0..64u32 {
        let remaining = 64 - level; // domain bits left (incl. current)
        let bit = (code >> (63 - level)) & 1;
        let (l, w) = split(key, &mut path, level, lo, width, remaining, bit == 1);
        lo = l;
        width = w;
    }
    lo
}

/// Decrypt a 96-bit order-preserving code back to the 64-bit order
/// code. Returns `None` if the ciphertext is not on any valid path.
pub fn ope_decrypt_code(key: &[u8; 16], cipher: u128) -> Option<u64> {
    let mut lo: u128 = 0;
    let mut width: u128 = 1 << RANGE_BITS;
    let mut code: u64 = 0;
    let mut path = [0u8; 9];
    for level in 0..64u32 {
        let remaining = 64 - level;
        // Probe the split point for bit = 1; if cipher falls left of
        // it, the plaintext bit was 0.
        let (split_lo, _) = split_point(key, &mut path, level, lo, width, remaining);
        let bit = cipher >= split_lo;
        let (l, w) = split(key, &mut path, level, lo, width, remaining, bit);
        lo = l;
        width = w;
        code = (code << 1) | bit as u64;
    }
    if cipher == lo {
        Some(code)
    } else {
        None
    }
}

/// The pseudo-random split point of the current range: the right half
/// starts at the returned value. Both halves keep room for the
/// remaining `remaining`-bit sub-domain (`2^(remaining-1)` each).
fn split_point(
    key: &[u8; 16],
    path: &mut [u8; 9],
    level: u32,
    lo: u128,
    width: u128,
    remaining: u32,
) -> (u128, ()) {
    let min_half: u128 = 1u128 << (remaining - 1);
    debug_assert!(width >= min_half * 2, "range too narrow at level {level}");
    let slack = width - 2 * min_half;
    path[0] = level as u8;
    let r = siphash24(key, &path[..1 + (level as usize).min(8)]) as u128;
    let offset = if slack == 0 { 0 } else { r % (slack + 1) };
    (lo + min_half + offset, ())
}

fn split(
    key: &[u8; 16],
    path: &mut [u8; 9],
    level: u32,
    lo: u128,
    width: u128,
    remaining: u32,
    right: bool,
) -> (u128, u128) {
    let (mid, ()) = split_point(key, path, level, lo, width, remaining);
    // Record the chosen direction into the path for subsequent levels.
    if (level as usize) < 64 {
        let byte = (level / 8) as usize;
        if byte < 8 && right {
            path[1 + byte] |= 1 << (level % 8);
        }
    }
    if right {
        (mid, lo + width - mid)
    } else {
        (lo, mid - lo)
    }
}

/// Encrypt a typed scalar: returns `tag ‖ 16-byte big-endian code`.
pub fn ope_encrypt(key: &[u8; 16], ty: OpeType, code: u64) -> Vec<u8> {
    let c = ope_encrypt_code(key, code);
    let mut out = Vec::with_capacity(17);
    out.push(ty as u8);
    out.extend_from_slice(&c.to_be_bytes());
    out
}

/// Decrypt a typed scalar produced by [`ope_encrypt`].
pub fn ope_decrypt(key: &[u8; 16], bytes: &[u8]) -> Option<(OpeType, u64)> {
    if bytes.len() != 17 {
        return None;
    }
    let ty = OpeType::from_tag(bytes[0])?;
    let c = u128::from_be_bytes(bytes[1..].try_into().ok()?);
    let code = ope_decrypt_code(key, c)?;
    Some((ty, code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn int_code_preserves_order() {
        let vals = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        for w in vals.windows(2) {
            assert!(int_to_code(w[0]) < int_to_code(w[1]));
            assert_eq!(code_to_int(int_to_code(w[0])), w[0]);
        }
    }

    #[test]
    fn num_code_preserves_order() {
        let vals = [-1e300, -2.5, -0.0, 0.5, 2.5, 1e300];
        for w in vals.windows(2) {
            assert!(num_to_code(w[0]) < num_to_code(w[1]), "{} < {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(code_to_num(num_to_code(v)), v);
        }
    }

    #[test]
    fn ope_is_strictly_monotone() {
        let key = [42u8; 16];
        let mut rng = StdRng::seed_from_u64(1);
        let mut codes: Vec<u64> = (0..200).map(|_| rng.gen()).collect();
        codes.extend([0, 1, u64::MAX - 1, u64::MAX]);
        codes.sort_unstable();
        codes.dedup();
        let encs: Vec<u128> = codes.iter().map(|&c| ope_encrypt_code(&key, c)).collect();
        for w in encs.windows(2) {
            assert!(w[0] < w[1], "monotonicity violated");
        }
    }

    #[test]
    fn ope_roundtrip() {
        let key = [7u8; 16];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let code: u64 = rng.gen();
            let c = ope_encrypt_code(&key, code);
            assert_eq!(ope_decrypt_code(&key, c), Some(code));
        }
        // Boundaries.
        for code in [0u64, 1, u64::MAX] {
            assert_eq!(
                ope_decrypt_code(&key, ope_encrypt_code(&key, code)),
                Some(code)
            );
        }
    }

    #[test]
    fn ope_is_keyed() {
        let k1 = [1u8; 16];
        let k2 = [2u8; 16];
        assert_ne!(ope_encrypt_code(&k1, 12345), ope_encrypt_code(&k2, 12345));
    }

    #[test]
    fn decrypt_only_accepts_valid_leaves() {
        // Invariant: decrypt(c') = Some(x) ⟹ encrypt(x) = c'. Probing
        // neighbours of a valid ciphertext either fails or lands on the
        // genuine ciphertext of another plaintext.
        let key = [3u8; 16];
        for code in [0u64, 999, u64::MAX / 3] {
            let c = ope_encrypt_code(&key, code);
            for probe in [c.wrapping_sub(1), c + 1, c + 12345] {
                if let Some(x) = ope_decrypt_code(&key, probe) {
                    assert_eq!(ope_encrypt_code(&key, x), probe);
                }
            }
        }
    }

    #[test]
    fn typed_roundtrip() {
        let key = [9u8; 16];
        let bytes = ope_encrypt(&key, OpeType::Int, int_to_code(-77));
        let (ty, code) = ope_decrypt(&key, &bytes).unwrap();
        assert_eq!(ty, OpeType::Int);
        assert_eq!(code_to_int(code), -77);
        assert!(ope_decrypt(&key, &bytes[..5]).is_none());
    }

    #[test]
    fn typed_ciphertexts_compare_bytewise() {
        let key = [4u8; 16];
        let a = ope_encrypt(&key, OpeType::Num, num_to_code(1.5));
        let b = ope_encrypt(&key, OpeType::Num, num_to_code(2.5));
        assert!(a < b, "byte order must follow plaintext order");
    }
}
