//! Arbitrary-precision unsigned integers.
//!
//! A minimal bignum sufficient for Paillier and RSA: little-endian
//! `u64` limbs, schoolbook multiplication, long division (with a
//! single-limb fast path), binary extended GCD for modular inverses,
//! Miller–Rabin primality testing, and modular exponentiation. For odd
//! moduli — every RSA/Paillier modulus — [`BigUint::modpow`] runs on a
//! [`Montgomery`] context (CIOS multiplication, fixed 4-bit-window
//! exponentiation), which avoids the per-step long division that made
//! the original square-and-multiply the single hottest loop in the
//! whole system. Callers exponentiating repeatedly under one modulus
//! should build the [`Montgomery`] context once and reuse it; the
//! microbenchmarks in `crates/crypto/benches` track the per-operation
//! cost that feeds the §7 economic model.

use rand::Rng;
use std::cmp::Ordering;

/// Little-endian, normalized (no trailing zero limbs) unsigned bignum.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: vec![] }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a primitive.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From a u128.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// To u128 (truncating is a bug: panics if the value doesn't fit).
    pub fn to_u128(&self) -> u128 {
        assert!(self.limbs.len() <= 2, "BigUint does not fit in u128");
        let lo = self.limbs.first().copied().unwrap_or(0) as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        (hi << 64) | lo
    }

    /// Big-endian bytes (no leading zeros; empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.split_off(first_nonzero)
    }

    /// From big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = [0u8; 8];
            limb[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(limb));
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Bit length (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i` (little-endian numbering).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (big, small) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(big.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..big.limbs.len() {
            let a = big.limbs[i];
            let b = small.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`. Panics on underflow (callers compare first).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift left by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Shift right by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let mut l = self.limbs[i] >> bit_shift;
                if i + 1 < self.limbs.len() {
                    l |= self.limbs[i + 1] << (64 - bit_shift);
                }
                out.push(l);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `(self / other, self % other)`: limb-wise short division for
    /// single-limb divisors (small primes, `u64` moduli), binary long
    /// division otherwise.
    pub fn divmod(&self, other: &BigUint) -> (BigUint, BigUint) {
        assert!(!other.is_zero(), "division by zero");
        if self < other {
            return (BigUint::zero(), self.clone());
        }
        if other.limbs.len() == 1 {
            let d = other.limbs[0] as u128;
            let mut q = vec![0u64; self.limbs.len()];
            let mut r: u128 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (r << 64) | self.limbs[i] as u128;
                q[i] = (cur / d) as u64;
                r = cur % d;
            }
            let mut quotient = BigUint { limbs: q };
            quotient.normalize();
            return (quotient, BigUint::from_u128(r));
        }
        let shift = self.bits() - other.bits();
        let mut quotient = BigUint::zero();
        let mut rem = self.clone();
        let mut divisor = other.shl(shift);
        for i in (0..=shift).rev() {
            if rem >= divisor {
                rem = rem.sub(&divisor);
                quotient = quotient.set_bit(i);
            }
            divisor = divisor.shr(1);
        }
        (quotient, rem)
    }

    fn set_bit(mut self, i: usize) -> BigUint {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
        self
    }

    /// `self % m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.divmod(m).1
    }

    /// `(self * other) % m`.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self^exp % m`: Montgomery fixed-window exponentiation for odd
    /// moduli, square-and-multiply with per-step division otherwise.
    ///
    /// Callers looping over one modulus should build a [`Montgomery`]
    /// context once and call [`Montgomery::pow`] directly — this entry
    /// point pays the context setup (one long division for `R² mod m`)
    /// on every call.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero());
        if m.is_one() {
            return BigUint::zero();
        }
        if let Some(ctx) = Montgomery::new(m) {
            return ctx.pow(self, exp);
        }
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mulmod(&base, m);
            }
            base = base.mulmod(&base, m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse `self⁻¹ mod m`, if it exists.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        // Extended Euclid over non-negative values, tracking signs.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        // Coefficients of `self` modulo m: (sign, magnitude).
        let mut t0 = (false, BigUint::zero());
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.divmod(&r1);
            // t2 = t0 - q * t1 (signed arithmetic on (sign, mag)).
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        // Map t0 into [0, m).
        let (neg, mag) = t0;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniform random value in `[0, bound)`.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bits();
        loop {
            let mut limbs = vec![0u64; bits.div_ceil(64)];
            for l in &mut limbs {
                *l = rng.gen();
            }
            // Mask the top limb to the right bit count.
            let extra = limbs.len() * 64 - bits;
            if extra > 0 {
                let last = limbs.len() - 1;
                limbs[last] &= u64::MAX >> extra;
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test (`rounds` witnesses).
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        for small in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            let p = BigUint::from_u64(small);
            if self == &p {
                return true;
            }
            if self.rem(&p).is_zero() {
                return false;
            }
        }
        // self - 1 = d * 2^r.
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut r = 0usize;
        while d.is_even() {
            d = d.shr(1);
            r += 1;
        }
        let two = BigUint::from_u64(2);
        'witness: for _ in 0..rounds {
            let a = loop {
                let a = BigUint::random_below(rng, self);
                if a >= two {
                    break a;
                }
            };
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..r - 1 {
                x = x.mulmod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime of exactly `bits` bits.
    pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits >= 8, "prime size too small");
        loop {
            let mut limbs = vec![0u64; bits.div_ceil(64)];
            for l in &mut limbs {
                *l = rng.gen();
            }
            let extra = limbs.len() * 64 - bits;
            let last = limbs.len() - 1;
            limbs[last] &= u64::MAX >> extra;
            limbs[last] |= 1 << ((bits - 1) % 64); // exact bit length
            limbs[0] |= 1; // odd
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if candidate.is_probable_prime(rng, 20) {
                return candidate;
            }
        }
    }
}

/// Montgomery arithmetic over a fixed odd modulus.
///
/// Construction costs one long division (`R² mod m`); after that,
/// modular multiplication is a CIOS pass with no division at all, and
/// [`Montgomery::pow`] runs a fixed 4-bit-window exponentiation —
/// roughly `1.25` Montgomery multiplications per exponent bit instead
/// of up to two multiply-then-long-divide steps. This is the engine
/// under every RSA envelope, Paillier cell, and prime-generation
/// Miller–Rabin round.
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// Modulus limbs (little-endian, length `n`, top limb non-zero).
    m: Vec<u64>,
    /// `-m⁻¹ mod 2⁶⁴`.
    m0_inv: u64,
    /// `R² mod m` padded to `n` limbs, with `R = 2^(64n)`.
    r2: Vec<u64>,
}

impl Montgomery {
    /// Context for an odd modulus `> 1`; `None` for even, zero, or one.
    pub fn new(m: &BigUint) -> Option<Montgomery> {
        if m.is_zero() || m.is_one() || m.is_even() {
            return None;
        }
        let limbs = m.limbs.clone();
        let n = limbs.len();
        // Newton's iteration doubles correct low bits each round:
        // m0 is its own inverse mod 2³ for odd m0, so 5 rounds reach 2⁶⁴.
        let m0 = limbs[0];
        let mut inv = m0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let m0_inv = inv.wrapping_neg();
        let mut r2 = BigUint::one().shl(2 * n * 64).rem(m).limbs;
        r2.resize(n, 0);
        Some(Montgomery {
            m: limbs,
            m0_inv,
            r2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> BigUint {
        let mut m = BigUint {
            limbs: self.m.clone(),
        };
        m.normalize();
        m
    }

    /// CIOS Montgomery product: `a·b·R⁻¹ mod m` for `n`-limb inputs
    /// `< m`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.m.len();
        let mut t = vec![0u64; n + 2];
        for &ai in a.iter().take(n) {
            // t += ai · b
            let mut carry = 0u64;
            for (tj, &bj) in t[..n].iter_mut().zip(&b[..n]) {
                let cur = *tj as u128 + (ai as u128) * (bj as u128) + carry as u128;
                *tj = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[n] as u128 + carry as u128;
            t[n] = cur as u64;
            t[n + 1] = (cur >> 64) as u64;
            // t = (t + u·m) / 2⁶⁴ with u chosen so the low limb cancels.
            let u = t[0].wrapping_mul(self.m0_inv);
            let cur = t[0] as u128 + (u as u128) * (self.m[0] as u128);
            let mut carry = (cur >> 64) as u64;
            for j in 1..n {
                let cur = t[j] as u128 + (u as u128) * (self.m[j] as u128) + carry as u128;
                t[j - 1] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let cur = t[n] as u128 + carry as u128;
            t[n - 1] = cur as u64;
            t[n] = t[n + 1] + ((cur >> 64) as u64);
            t[n + 1] = 0;
        }
        // Conditional final subtraction brings t into [0, m).
        let over = t[n] > 0 || cmp_limbs(&t[..n], &self.m) != Ordering::Less;
        let mut out = Vec::with_capacity(n);
        if over {
            let mut borrow = 0u64;
            for (&tj, &mj) in t[..n].iter().zip(&self.m[..n]) {
                let (d1, b1) = tj.overflowing_sub(mj);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out.push(d2);
                borrow = (b1 as u64) + (b2 as u64);
            }
        } else {
            out.extend_from_slice(&t[..n]);
        }
        out
    }

    /// Pad a reduced value to `n` limbs. The common already-reduced
    /// case compares limbs in place — no modulus clone on the hot path.
    fn to_limbs(&self, a: &BigUint) -> Vec<u64> {
        let n = self.m.len();
        let needs_reduction = a.limbs.len() > n
            || (a.limbs.len() == n && cmp_limbs(&a.limbs, &self.m) != Ordering::Less);
        let mut limbs = if needs_reduction {
            a.rem(&self.modulus()).limbs
        } else {
            a.limbs.clone()
        };
        limbs.resize(n, 0);
        limbs
    }

    /// `1` in Montgomery form (`R mod m`).
    fn one_mont(&self) -> Vec<u64> {
        let mut one = vec![0u64; self.m.len()];
        one[0] = 1;
        self.mont_mul(&one, &self.r2)
    }

    /// `(a · b) mod m` — one domain conversion plus one product, no
    /// long division.
    pub fn mulmod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let a_mont = self.mont_mul(&self.to_limbs(a), &self.r2);
        let mut out = BigUint {
            limbs: self.mont_mul(&a_mont, &self.to_limbs(b)),
        };
        out.normalize();
        out
    }

    /// `base^exp mod m` via fixed 4-bit windows.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let bits = exp.bits();
        if bits == 0 {
            return BigUint::one().rem(&self.modulus());
        }
        let base_m = self.mont_mul(&self.to_limbs(base), &self.r2);
        // table[k] = baseᵏ in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one_mont());
        table.push(base_m.clone());
        for k in 2..16 {
            table.push(self.mont_mul(&table[k - 1], &base_m));
        }
        let windows = bits.div_ceil(4);
        let mut acc = table[0].clone();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut win = 0usize;
            for b in (0..4).rev() {
                win = (win << 1) | exp.bit(w * 4 + b) as usize;
            }
            if win != 0 {
                acc = self.mont_mul(&acc, &table[win]);
                started = true;
            }
        }
        // Leave the Montgomery domain: multiply by 1.
        let mut one = vec![0u64; self.m.len()];
        one[0] = 1;
        let mut out = BigUint {
            limbs: self.mont_mul(&acc, &one),
        };
        out.normalize();
        out
    }
}

/// Compare two equal-length limb slices (little-endian).
fn cmp_limbs(a: &[u64], b: &[u64]) -> Ordering {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// `a - b` on (sign, magnitude) pairs.
fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (false, a.1.add(&b.1)),
        (true, false) => (true, a.1.add(&b.1)),
        // same signs: subtract magnitudes.
        (sa, _) => {
            if a.1 >= b.1 {
                (sa, a.1.sub(&b.1))
            } else {
                (!sa, b.1.sub(&a.1))
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn arithmetic_matches_u128_oracle() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let a: u64 = rng.gen();
            let b: u64 = rng.gen();
            let (a, b) = (a as u128, b as u128);
            assert_eq!(big(a).add(&big(b)).to_u128(), a + b);
            let (hi, lo) = (a.max(b), a.min(b));
            assert_eq!(big(hi).sub(&big(lo)).to_u128(), hi - lo);
            assert_eq!(big(a).mul(&big(b)).to_u128(), a * b);
            if b != 0 {
                let (q, r) = big(a).divmod(&big(b));
                assert_eq!(q.to_u128(), a / b);
                assert_eq!(r.to_u128(), a % b);
            }
        }
    }

    #[test]
    fn modpow_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let base: u32 = rng.gen();
            let exp: u16 = rng.gen_range(0..64);
            let m: u32 = rng.gen_range(2..u32::MAX);
            let expected = {
                let mut acc: u128 = 1;
                for _ in 0..exp {
                    acc = acc * base as u128 % m as u128;
                }
                acc
            };
            let got = big(base as u128)
                .modpow(&big(exp as u128), &big(m as u128))
                .to_u128();
            assert_eq!(got, expected, "{base}^{exp} mod {m}");
        }
    }

    #[test]
    fn shifting() {
        let x = big(0x1234_5678_9abc_def0);
        assert_eq!(x.shl(4).to_u128(), 0x1234_5678_9abc_def0u128 << 4);
        assert_eq!(x.shr(12).to_u128(), 0x1234_5678_9abc_def0u128 >> 12);
        assert_eq!(x.shl(64).shr(64), x);
        assert_eq!(big(0).shl(100), BigUint::zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let v: u128 = rng.gen();
            let n = big(v);
            assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
        }
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(48).gcd(&big(18)).to_u128(), 6);
        assert_eq!(big(17).gcd(&big(31)).to_u128(), 1);
        // 3 * 4 = 12 ≡ 1 mod 11.
        assert_eq!(big(3).modinv(&big(11)).unwrap().to_u128(), 4);
        // No inverse when not coprime.
        assert!(big(6).modinv(&big(9)).is_none());
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let m: u64 = rng.gen_range(3..u64::MAX);
            let a: u64 = rng.gen_range(1..m);
            let am = big(a as u128);
            let mm = big(m as u128);
            if let Some(inv) = am.modinv(&mm) {
                assert_eq!(am.mulmod(&inv, &mm).to_u128(), 1, "{a}⁻¹ mod {m}");
            } else {
                assert_ne!(am.gcd(&mm).to_u128(), 1);
            }
        }
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(11);
        for p in [2u64, 3, 5, 17, 97, 65_537, 2_147_483_647] {
            assert!(
                BigUint::from_u64(p).is_probable_prime(&mut rng, 20),
                "{p} is prime"
            );
        }
        for c in [1u64, 4, 100, 65_535, 2_147_483_646] {
            assert!(
                !BigUint::from_u64(c).is_probable_prime(&mut rng, 20),
                "{c} is composite"
            );
        }
        // Carmichael number 561 = 3·11·17 must be rejected.
        assert!(!BigUint::from_u64(561).is_probable_prime(&mut rng, 20));
    }

    #[test]
    fn prime_generation() {
        let mut rng = StdRng::seed_from_u64(12);
        let p = BigUint::gen_prime(&mut rng, 64);
        assert_eq!(p.bits(), 64);
        assert!(p.is_probable_prime(&mut rng, 20));
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        let bound = big(1000);
        for _ in 0..100 {
            let r = BigUint::random_below(&mut rng, &bound);
            assert!(r < bound);
        }
    }

    #[test]
    fn montgomery_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..50 {
            // Random odd multi-limb modulus.
            let mut m = BigUint::gen_prime(&mut rng, 96);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = Montgomery::new(&m).expect("odd modulus");
            let a = BigUint::random_below(&mut rng, &m);
            let b = BigUint::random_below(&mut rng, &m);
            assert_eq!(ctx.mulmod(&a, &b), a.mul(&b).rem(&m));
            let e = BigUint::from_u64(rng.gen_range(0..10_000));
            // Oracle: the plain square-and-multiply loop.
            let mut base = a.rem(&m);
            let mut expect = BigUint::one();
            for i in 0..e.bits() {
                if e.bit(i) {
                    expect = expect.mulmod(&base, &m);
                }
                base = base.mulmod(&base, &m);
            }
            assert_eq!(ctx.pow(&a, &e), expect);
        }
    }

    #[test]
    fn montgomery_edge_cases() {
        let m = big(1_000_003);
        let ctx = Montgomery::new(&m).unwrap();
        assert_eq!(ctx.pow(&big(5), &BigUint::zero()).to_u128(), 1);
        assert_eq!(ctx.pow(&BigUint::zero(), &big(7)).to_u128(), 0);
        assert_eq!(ctx.pow(&big(2), &big(20)).to_u128(), (1 << 20) % 1_000_003);
        // Unreduced base.
        assert_eq!(ctx.mulmod(&big(2_000_007), &big(3)).to_u128(), 3);
        // Even / degenerate moduli have no context.
        assert!(Montgomery::new(&big(10)).is_none());
        assert!(Montgomery::new(&BigUint::one()).is_none());
        assert!(Montgomery::new(&BigUint::zero()).is_none());
    }

    #[test]
    fn single_limb_division_fast_path() {
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..200 {
            let a = BigUint::random_below(&mut rng, &BigUint::one().shl(200));
            let d: u64 = rng.gen_range(1..u64::MAX);
            let (q, r) = a.divmod(&BigUint::from_u64(d));
            assert_eq!(q.mul(&BigUint::from_u64(d)).add(&r), a);
            assert!(r < BigUint::from_u64(d));
        }
    }

    #[test]
    fn comparison_and_bits() {
        assert!(big(5) < big(6));
        assert!(big(1 << 70) > big(u64::MAX as u128));
        assert_eq!(big(0).bits(), 0);
        assert_eq!(big(1).bits(), 1);
        assert_eq!(big(255).bits(), 8);
        assert_eq!(big(256).bits(), 9);
    }
}
