#!/usr/bin/env bash
# End-to-end smoke of the federated deployment: five mpq-server
# processes (one per subject of the running example) on loopback TCP,
# driven by mpq-client with SQL text. Passes when the client prints the
# paper's answer (the tPA group) and every process exits cleanly.
#
# Usage: scripts/server_smoke.sh [profile] [--faults SPEC]
#   profile: release|debug (default release)
#   --faults SPEC: chaos variant — inject the seeded fault schedule into
#   every process (servers and client) and additionally require the
#   client to report at least one recovered delivery, proving the query
#   succeeded *through* the retry/reconnect machinery rather than by
#   never being hit.
set -euo pipefail

PROFILE=${1:-release}
FAULTS=""
if [[ "${2:-}" == "--faults" ]]; then
  FAULTS="${3:?--faults needs a SPEC like seed=7,drop=200,max=2}"
fi
BIN="target/$PROFILE"
BASE=${MPQ_SMOKE_BASE_PORT:-7100}
SEED=42
LOGDIR=$(mktemp -d)
SQL="select T, avg(P) from Hosp join Ins on S=C where D='stroke' group by T having avg(P)>100"

if [[ ! -x "$BIN/mpq-server" || ! -x "$BIN/mpq-client" ]]; then
  echo "server_smoke: building mpq-server/mpq-client ($PROFILE)" >&2
  flags=()
  [[ $PROFILE == release ]] && flags+=(--release)
  cargo build -p mpq-server --bins "${flags[@]}"
fi

SUBJECTS=(H I X Y Z)
CLIENT_ADDR="127.0.0.1:$BASE"
PEERS="U=$CLIENT_ADDR"
SERVERS=""
port=$BASE
for name in "${SUBJECTS[@]}"; do
  port=$((port + 1))
  PEERS="$PEERS,$name=127.0.0.1:$port"
  SERVERS="$SERVERS${SERVERS:+,}$name=127.0.0.1:$port"
done

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$LOGDIR"
}
trap cleanup EXIT

fault_flags=()
[[ -n "$FAULTS" ]] && fault_flags=(--faults "$FAULTS")

port=$BASE
for name in "${SUBJECTS[@]}"; do
  port=$((port + 1))
  "$BIN/mpq-server" --subject "$name" --listen "127.0.0.1:$port" \
    --peers "$PEERS" --seed "$SEED" "${fault_flags[@]}" > "$LOGDIR/$name.log" 2>&1 &
  pids+=($!)
done

# Wait for every server's readiness line (each binds before printing).
for name in "${SUBJECTS[@]}"; do
  for _ in $(seq 1 100); do
    grep -q "listening on" "$LOGDIR/$name.log" 2>/dev/null && break
    sleep 0.1
  done
  if ! grep -q "listening on" "$LOGDIR/$name.log"; then
    echo "server_smoke: server $name never became ready:" >&2
    cat "$LOGDIR/$name.log" >&2
    exit 1
  fi
done

out=$("$BIN/mpq-client" --listen "$CLIENT_ADDR" --servers "$SERVERS" \
  --seed "$SEED" --shutdown "${fault_flags[@]}" "$SQL")
echo "$out"

# The paper's running example: exactly the tPA group survives HAVING.
if ! grep -q "tPA" <<< "$out"; then
  echo "server_smoke: expected the tPA group in the result" >&2
  exit 1
fi
if ! grep -q "result (1 rows)" <<< "$out"; then
  echo "server_smoke: expected exactly one result row" >&2
  exit 1
fi

# Chaos variant: the run must have *recovered* — at least one delivery
# succeeded only after a retry or a control-plane redial. Zero means the
# schedule never touched a used edge and the smoke proved nothing.
if [[ -n "$FAULTS" ]]; then
  if ! grep -qE "recovery: [1-9][0-9]* recovered deliveries" <<< "$out"; then
    echo "server_smoke: chaos run reported no recovered deliveries" >&2
    exit 1
  fi
fi

# --shutdown must actually take every server down.
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    echo "server_smoke: a server exited non-zero after shutdown" >&2
    exit 1
  fi
done
pids=()
echo "server_smoke: OK"
