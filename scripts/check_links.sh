#!/usr/bin/env bash
# Fail on broken *relative* links in the repo's top-level Markdown docs.
#
# Extracts every inline Markdown link target from the files passed as
# arguments (default: README.md ARCHITECTURE.md), skips absolute URLs
# (http/https/mailto) and pure in-page anchors (#…), strips any
# trailing anchor from relative targets, and checks the referenced file
# or directory exists relative to the repo root. Exits non-zero listing
# every broken link. Deliberately grep/sed only — no extra tooling in
# CI or locally.
set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    files=(README.md ARCHITECTURE.md)
fi

status=0
for f in "${files[@]}"; do
    if [ ! -f "$f" ]; then
        echo "MISSING DOC: $f"
        status=1
        continue
    fi
    # Inline links: [text](target). The capture stops at ')' or a
    # space (titles like [t](x "title") keep only x).
    targets=$(grep -o '\](\([^) ]*\)[^)]*)' "$f" | sed 's/^](//; s/[") ]*$//; s/ .*$//')
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
            '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$path" ]; then
            echo "BROKEN LINK in $f: ($target) → $path does not exist"
            status=1
        fi
    done <<< "$targets"
done

if [ "$status" -eq 0 ]; then
    echo "all relative links resolve (${files[*]})"
fi
exit "$status"
