#!/usr/bin/env bash
# Peak-RSS gate: run a command and fail if its peak resident set
# exceeds the budget. Used by the bench-smoke CI job to enforce the
# streaming engine's memory bound on the SF 1 throughput smoke —
# operators must hold O(batch) live data (plus the declared pipeline
# breakers), so peak RSS must stay within a fixed multiple of the
# generated database, never a whole-pipeline re-materialization.
#
# Usage: scripts/rss_gate.sh MAX_MB command [args...]
#
# The command must be the measured process itself (run the built
# binary, not `cargo run`, which would measure cargo). Peak is read
# from /proc/<pid>/status VmHWM (the kernel's high-water mark), polled
# until exit; the last observation of a monotone counter is the peak.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 MAX_MB command [args...]" >&2
    exit 2
fi
max_mb=$1
shift

"$@" &
pid=$!
peak_kb=0
while kill -0 "$pid" 2>/dev/null; do
    hwm=$(awk '/^VmHWM:/ {print $2}' "/proc/$pid/status" 2>/dev/null || true)
    if [ -n "${hwm:-}" ] && [ "$hwm" -gt "$peak_kb" ]; then
        peak_kb=$hwm
    fi
    sleep 0.2
done
status=0
wait "$pid" || status=$?

peak_mb=$((peak_kb / 1024))
echo "# rss_gate: peak RSS ${peak_mb} MiB (budget ${max_mb} MiB)"
if [ "$status" -ne 0 ]; then
    echo "# rss_gate: command failed with status $status" >&2
    exit "$status"
fi
if [ "$peak_mb" -gt "$max_mb" ]; then
    echo "# rss_gate: peak RSS ${peak_mb} MiB exceeds the ${max_mb} MiB budget" >&2
    exit 1
fi
