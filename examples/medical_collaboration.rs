//! Medical collaboration: distributed *execution* over encrypted data.
//!
//! The intro's motivating scenario: a hospital and an insurer expose
//! their relations for collaborative analysis; cloud providers supply
//! computation without ever seeing plaintext identifiers or premiums.
//! This example actually *runs* the Fig. 7(a) plan across simulated
//! subjects — real XTEA/OPE/Paillier ciphertexts, signed RSA request
//! envelopes, per-subject key rings — and checks the answer against a
//! centralized plaintext execution.
//!
//! Run with `cargo run --example medical_collaboration`.

use mpq::core::candidates::candidates;
use mpq::core::capability::CapabilityPolicy;
use mpq::core::extend::{minimally_extend, Assignment};
use mpq::core::fixtures::RunningExample;
use mpq::core::keys::plan_keys;
use mpq::dist::Simulator;
use mpq::exec::{Database, SchemePlan};
use mpq_crypto::keyring::KeyRing;
use std::collections::HashMap;

fn load(ex: &RunningExample) -> Database {
    let mut db = Database::new();
    db.load(&ex.catalog, "Hosp", RunningExample::sample_hosp_rows());
    db.load(&ex.catalog, "Ins", RunningExample::sample_ins_rows());
    db
}

fn main() {
    let ex = RunningExample::new();
    let db = load(&ex);

    // Plan the Fig. 7(a) assignment.
    let cands = candidates(
        &ex.plan,
        &ex.catalog,
        &ex.policy,
        &ex.subjects,
        &CapabilityPolicy::default(),
        true,
    );
    let mut a = Assignment::new();
    a.set(ex.node("select_d"), ex.subject("H"));
    a.set(ex.node("join"), ex.subject("X"));
    a.set(ex.node("group"), ex.subject("X"));
    a.set(ex.node("having"), ex.subject("Y"));
    let ext = minimally_extend(
        &ex.plan,
        &ex.catalog,
        &ex.policy,
        &ex.subjects,
        &cands,
        &a,
        Some(ex.subject("U")),
    )
    .expect("valid assignment");
    let keys = plan_keys(&ext);

    // Centralized plaintext reference (the user could legally do this).
    let reference = {
        let ring = KeyRing::new();
        let schemes = SchemePlan::default();
        let koa = HashMap::new();
        let ctx = mpq::exec::engine::ExecCtx::new(&ex.catalog, &db, &ring, &schemes, &koa);
        mpq::exec::execute(&ex.plan, &ctx).expect("plaintext execution")
    };
    println!("== centralized plaintext reference ==");
    println!("{}", reference.display(&ex.catalog));

    // Distributed encrypted execution on the concurrent multi-party
    // runtime: H, I, X, Y each run a party loop on their own thread,
    // exchanging signed envelopes and encrypted tables over channels.
    let mut sim = Simulator::new(&ex.catalog, &ex.subjects, &ex.policy, &db, 2026);
    let report = sim
        .run(&ext, &keys, ex.subject("U"))
        .expect("authorized distributed run");
    println!("== distributed result (via H, I, X, Y, concurrently) ==");
    println!("{}", report.result.display(&ex.catalog));

    // The sequential reference interpreter must be observationally
    // identical — same rows, same bytes on every edge.
    let mut seq_sim = Simulator::new(&ex.catalog, &ex.subjects, &ex.policy, &db, 2026);
    let seq_report = seq_sim
        .run_sequential(&ext, &keys, ex.subject("U"))
        .expect("authorized sequential run");
    assert_eq!(report.transfers, seq_report.transfers);
    assert_eq!(report.requests, seq_report.requests);

    println!("== bytes on the wire ==");
    let mut edges: Vec<_> = report.transfers.iter().collect();
    edges.sort_by_key(|((f, t), _)| (f.index(), t.index()));
    for ((from, to), bytes) in edges {
        println!(
            "  {} → {}: {bytes} bytes",
            ex.subjects.name(*from),
            ex.subjects.name(*to)
        );
    }

    assert_eq!(reference.len(), report.result.len());
    for (a, b) in reference.to_rows().iter().zip(&report.result.to_rows()) {
        for (x, y) in a.iter().zip(b) {
            let close = match (x.as_num(), y.as_num()) {
                (Some(p), Some(q)) => (p - q).abs() < 1e-6,
                _ => x.sql_eq(y),
            };
            assert!(close, "mismatch: {x:?} vs {y:?}");
        }
    }
    println!("✓ distributed encrypted execution matches the plaintext reference");
    println!("✓ concurrent and sequential runtimes agree edge-for-edge");
}
