//! Medical collaboration: distributed *execution* over encrypted data.
//!
//! The intro's motivating scenario: a hospital and an insurer expose
//! their relations for collaborative analysis; cloud providers supply
//! computation without ever seeing plaintext identifiers or premiums.
//! This example actually *runs* the Fig. 7(a) plan across simulated
//! subjects — real XTEA/OPE/Paillier ciphertexts, signed RSA request
//! envelopes, per-subject key rings — and checks the answer against a
//! centralized plaintext execution.
//!
//! Run with `cargo run --example medical_collaboration`.

use mpq::algebra::{Date, Value};
use mpq::core::candidates::candidates;
use mpq::core::capability::CapabilityPolicy;
use mpq::core::extend::{minimally_extend, Assignment};
use mpq::core::fixtures::RunningExample;
use mpq::core::keys::plan_keys;
use mpq::dist::Simulator;
use mpq::exec::{Database, SchemePlan};
use mpq_crypto::keyring::KeyRing;
use std::collections::HashMap;

fn load(ex: &RunningExample) -> Database {
    let mut db = Database::new();
    let d = |s: &str| Value::Date(Date::parse(s).unwrap());
    db.load(
        &ex.catalog,
        "Hosp",
        vec![
            vec![
                Value::str("alice"),
                d("1969-03-01"),
                Value::str("stroke"),
                Value::str("tPA"),
            ],
            vec![
                Value::str("bob"),
                d("1975-07-12"),
                Value::str("stroke"),
                Value::str("tPA"),
            ],
            vec![
                Value::str("carol"),
                d("1981-11-30"),
                Value::str("flu"),
                Value::str("rest"),
            ],
            vec![
                Value::str("dave"),
                d("1958-01-21"),
                Value::str("stroke"),
                Value::str("surgery"),
            ],
            vec![
                Value::str("erin"),
                d("1990-05-05"),
                Value::str("stroke"),
                Value::str("tPA"),
            ],
        ],
    );
    db.load(
        &ex.catalog,
        "Ins",
        vec![
            vec![Value::str("alice"), Value::Num(150.0)],
            vec![Value::str("bob"), Value::Num(210.0)],
            vec![Value::str("carol"), Value::Num(75.0)],
            vec![Value::str("dave"), Value::Num(95.0)],
            vec![Value::str("erin"), Value::Num(180.0)],
        ],
    );
    db
}

fn main() {
    let ex = RunningExample::new();
    let db = load(&ex);

    // Plan the Fig. 7(a) assignment.
    let cands = candidates(
        &ex.plan,
        &ex.catalog,
        &ex.policy,
        &ex.subjects,
        &CapabilityPolicy::default(),
        true,
    );
    let mut a = Assignment::new();
    a.set(ex.node("select_d"), ex.subject("H"));
    a.set(ex.node("join"), ex.subject("X"));
    a.set(ex.node("group"), ex.subject("X"));
    a.set(ex.node("having"), ex.subject("Y"));
    let ext = minimally_extend(
        &ex.plan,
        &ex.catalog,
        &ex.policy,
        &ex.subjects,
        &cands,
        &a,
        Some(ex.subject("U")),
    )
    .expect("valid assignment");
    let keys = plan_keys(&ext);

    // Centralized plaintext reference (the user could legally do this).
    let reference = {
        let ring = KeyRing::new();
        let schemes = SchemePlan::default();
        let koa = HashMap::new();
        let ctx = mpq::exec::engine::ExecCtx::new(&ex.catalog, &db, &ring, &schemes, &koa);
        mpq::exec::execute(&ex.plan, &ctx).expect("plaintext execution")
    };
    println!("== centralized plaintext reference ==");
    println!("{}", reference.display(&ex.catalog));

    // Distributed encrypted execution.
    let mut sim = Simulator::new(&ex.catalog, &ex.subjects, &ex.policy, &db, 2026);
    let report = sim
        .run(&ext, &keys, ex.subject("U"))
        .expect("authorized distributed run");
    println!("== distributed result (via H, I, X, Y) ==");
    println!("{}", report.result.display(&ex.catalog));

    println!("== bytes on the wire ==");
    let mut edges: Vec<_> = report.transfers.iter().collect();
    edges.sort_by_key(|((f, t), _)| (f.index(), t.index()));
    for ((from, to), bytes) in edges {
        println!(
            "  {} → {}: {bytes} bytes",
            ex.subjects.name(*from),
            ex.subjects.name(*to)
        );
    }

    assert_eq!(reference.len(), report.result.len());
    for (a, b) in reference.rows.iter().zip(&report.result.rows) {
        for (x, y) in a.iter().zip(b) {
            let close = match (x.as_num(), y.as_num()) {
                (Some(p), Some(q)) => (p - q).abs() < 1e-6,
                _ => x.sql_eq(y),
            };
            assert!(close, "mismatch: {x:?} vs {y:?}");
        }
    }
    println!("✓ distributed encrypted execution matches the plaintext reference");
}
