//! Policy audit: why subjects are (not) authorized for a relation.
//!
//! Walks Example 4.1 of the paper: a relation with profile
//! `[P, BSC, ∅, ∅, {SC}]` and the running-example authorizations,
//! reporting per subject which of the three conditions of
//! Definition 4.1 fails — including the counter-intuitive case where
//! the insurer `I` is refused *because it sees too much* (plaintext
//! `C` but only encrypted `S`, breaking uniform visibility).
//!
//! Run with `cargo run --example policy_audit`.

use mpq::algebra::AttrSet;
use mpq::core::fixtures::RunningExample;
use mpq::core::profile::{EqClasses, Profile};

fn main() {
    let ex = RunningExample::new();
    let mut eq = EqClasses::new();
    eq.insert_class(&ex.attrs("SC"));
    let profile = Profile {
        vp: ex.attrs("P"),
        ve: ex.attrs("BSC"),
        ip: AttrSet::new(),
        ie: AttrSet::new(),
        eq,
    };
    println!("Relation profile: v: P | BSC (encrypted)   ≃: {{S,C}}");
    println!("(Example 4.1 of the paper)\n");
    for name in ["H", "I", "U", "X", "Y", "Z"] {
        let view = ex.policy.subject_view(&ex.catalog, ex.subject(name));
        match view.check(&profile) {
            Ok(()) => println!("  {name}: AUTHORIZED"),
            Err(v) => println!("  {name}: refused — {v}"),
        }
    }
    println!();
    println!(
        "Note how Y (encrypted-only over S and C) is authorized while\n\
         I (plaintext C, encrypted S) is not: the equivalence class\n\
         {{S,C}} would let I decrypt S through the join — the uniform\n\
         visibility condition blocks exactly that inference channel."
    );
}
