//! TPC-H cost explorer: the §7 economic evaluation for one query.
//!
//! Optimizes a TPC-H query under the three authorization scenarios and
//! prints the chosen operator assignments, injected encryption, keys,
//! and the cost breakdown.
//!
//! Run with `cargo run --example tpch_cost_explorer -- 5` (defaults to
//! query 3).

use mpq::core::capability::CapabilityPolicy;
use mpq::planner::{build_scenario, optimize, Scenario, Strategy};
use mpq::tpch::{query_plan, tpch_catalog, tpch_stats};

fn main() {
    let q: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    assert!((1..=22).contains(&q), "TPC-H defines queries 1–22");

    let cat = tpch_catalog();
    let stats = tpch_stats(&cat, 1.0); // the paper's 1 GB configuration
    let plan = query_plan(&cat, q);
    println!("== TPC-H Q{q} plan ==");
    println!("{}", plan.display(&cat));

    for scenario in Scenario::ALL {
        let env = build_scenario(&cat, scenario);
        let opt = optimize(
            &plan,
            &cat,
            &stats,
            &env,
            &CapabilityPolicy::tpch_evaluation(),
            Strategy::CostDp,
        )
        .expect("each scenario admits at least the all-user assignment");
        println!("== {} ==", scenario.name());
        let mut per_subject: std::collections::HashMap<&str, usize> = Default::default();
        for id in plan.postorder() {
            if plan.node(id).children.is_empty() {
                continue;
            }
            let s = opt.assignment.get(id).expect("assigned");
            *per_subject.entry(env.subjects.name(s)).or_default() += 1;
        }
        let mut counts: Vec<_> = per_subject.into_iter().collect();
        counts.sort();
        println!("  operators per subject: {counts:?}");
        println!(
            "  encryption ops: {}  decryption ops: {}  keys: {}",
            opt.extended.encryption_ops(),
            opt.extended.decryption_ops(),
            opt.keys.keys.len(),
        );
        println!(
            "  cost: cpu ${:.6} + io ${:.6} + net ${:.6} = ${:.6}  (est. {:.1}s)",
            opt.cost.cpu,
            opt.cost.io,
            opt.cost.net,
            opt.cost.total(),
            opt.cost.time_secs,
        );
    }
}
