//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Figures 1, 3, 4, 6, 7(a) and 8 on the console:
//! the query plan, per-node profiles, subject views, candidate sets,
//! the minimally extended plan with its keys, and the dispatched
//! sub-queries.
//!
//! Run with `cargo run --example quickstart`.

use mpq::core::candidates::candidates;
use mpq::core::capability::CapabilityPolicy;
use mpq::core::dispatch::dispatch;
use mpq::core::extend::{minimally_extend, Assignment};
use mpq::core::fixtures::RunningExample;
use mpq::core::keys::plan_keys;
use mpq::core::profile::profile_plan;

fn main() {
    let ex = RunningExample::new();

    println!("== Fig. 1(a): query plan ==");
    println!("{}", ex.plan.display(&ex.catalog));

    println!("== Fig. 4: overall subject views ==");
    for name in ["H", "I", "U", "X", "Y", "Z"] {
        let v = ex.policy.subject_view(&ex.catalog, ex.subject(name));
        println!(
            "  P_{name} = {:<6} E_{name} = {}",
            ex.catalog.render_attrs(&v.plain),
            ex.catalog.render_attrs(&v.enc),
        );
    }

    println!("\n== Fig. 3: profiles of the original plan ==");
    let profiles = profile_plan(&ex.plan);
    for node in ["select_d", "join", "group", "having"] {
        let p = &profiles[ex.node(node).index()];
        println!(
            "  {node:<9} v: {}|{}  i: {}|{}  ≃: {}",
            ex.catalog.render_attrs(&p.vp),
            ex.catalog.render_attrs(&p.ve),
            ex.catalog.render_attrs(&p.ip),
            ex.catalog.render_attrs(&p.ie),
            p.eq.classes()
                .map(|c| ex.catalog.render_attrs(c))
                .collect::<Vec<_>>()
                .join(","),
        );
    }

    println!("\n== Fig. 6: candidate sets Λ ==");
    let cands = candidates(
        &ex.plan,
        &ex.catalog,
        &ex.policy,
        &ex.subjects,
        &CapabilityPolicy::default(),
        true,
    );
    for node in ["select_d", "join", "group", "having"] {
        println!(
            "  Λ({node:<9}) = {}",
            ex.subjects.render(cands.of(ex.node(node)))
        );
    }

    println!("\n== Fig. 7(a): minimally extended plan for σ→H, ⋈→X, γ→X, σᵧ→Y ==");
    let mut a = Assignment::new();
    a.set(ex.node("select_d"), ex.subject("H"));
    a.set(ex.node("join"), ex.subject("X"));
    a.set(ex.node("group"), ex.subject("X"));
    a.set(ex.node("having"), ex.subject("Y"));
    let ext = minimally_extend(
        &ex.plan,
        &ex.catalog,
        &ex.policy,
        &ex.subjects,
        &cands,
        &a,
        Some(ex.subject("U")),
    )
    .expect("λ drawn from Λ always extends (Thm. 5.2)");
    println!("{}", ext.plan.display(&ex.catalog));

    println!("== Def. 6.1: query-plan keys ==");
    let keys = plan_keys(&ext);
    print!("{}", keys.display(&ex.catalog, &ex.subjects));

    println!("\n== Fig. 8: dispatched sub-queries ==");
    let d = dispatch(&ext, &keys, &ex.catalog, &ex.subjects);
    for (i, req) in d.requests.iter().enumerate() {
        println!(
            "  {}  {}",
            d.envelope_notation(i, ex.subject("U"), &ex.subjects, &ex.catalog, &keys),
            req.sql
        );
    }
}
