//! # mpq — Multi-Provider Query authorization
//!
//! Facade crate re-exporting the full workspace implementing
//! *"An Authorization Model for Multi-Provider Queries"*
//! (De Capitani di Vimercati, Foresti, Jajodia, Livraga, Paraboschi,
//! Samarati — PVLDB 2017).
//!
//! ```
//! use mpq::core::fixtures::RunningExample;
//! use mpq::core::candidates::candidates;
//! use mpq::core::capability::CapabilityPolicy;
//!
//! let ex = RunningExample::new();
//! let cands = candidates(
//!     &ex.plan, &ex.catalog, &ex.policy, &ex.subjects,
//!     &CapabilityPolicy::default(), true,
//! );
//! // Fig. 6: only U and Y can run the final `avg(P) > 100` selection.
//! assert_eq!(ex.subjects.render(cands.of(ex.node("having"))), "UY");
//! ```
//!
//! See the crate-level docs of each member for the paper mapping:
//! [`algebra`] (plans/SQL/statistics), [`core`] (profiles,
//! authorizations, candidates, minimal extension, keys, dispatch),
//! [`crypto`] (the four encryption schemes + envelopes), [`exec`]
//! (plaintext/encrypted execution), [`tpch`] (the §7 workload),
//! [`planner`] (economic optimization), and [`dist`] (the distributed
//! runtime: persistent multi-query [`dist::Session`]s and the
//! one-query [`dist::Simulator`]). The repository-level
//! `ARCHITECTURE.md` maps the crates, the life of a query, and every
//! paper definition to its module and test.

pub use mpq_algebra as algebra;
pub use mpq_core as core;
pub use mpq_crypto as crypto;
pub use mpq_dist as dist;
pub use mpq_exec as exec;
pub use mpq_planner as planner;
pub use mpq_tpch as tpch;
